package ir

import "fmt"

// MethodBuilder assembles a Method's CFG. Blocks are created explicitly;
// statements append to the current block. The builder enforces the block
// invariants (If/Return terminate a block; Goto sets the sole successor),
// which keeps hand-written app models and the corpus generator honest.
type MethodBuilder struct {
	m      *Method
	cur    *Block
	sealed map[*Block]bool
	nstar  int
}

// NewMethodBuilder starts building an instance method. The receiver "this"
// is implicit and not listed in params.
func NewMethodBuilder(name string, params ...string) *MethodBuilder {
	m := &Method{Name: name, Params: params}
	b := &MethodBuilder{m: m, sealed: make(map[*Block]bool)}
	b.cur = b.NewBlock()
	return b
}

// NewStaticMethodBuilder starts building a static method (no receiver).
func NewStaticMethodBuilder(name string, params ...string) *MethodBuilder {
	b := NewMethodBuilder(name, params...)
	b.m.Static = true
	return b
}

// NewBlock creates an empty block (not yet connected) and returns it.
func (b *MethodBuilder) NewBlock() *Block {
	blk := &Block{Index: len(b.m.Blocks)}
	b.m.Blocks = append(b.m.Blocks, blk)
	return blk
}

// SetBlock directs subsequent statements into blk.
func (b *MethodBuilder) SetBlock(blk *Block) { b.cur = blk }

// Current returns the block statements are being appended to.
func (b *MethodBuilder) Current() *Block { return b.cur }

func (b *MethodBuilder) emit(s Stmt) {
	if b.sealed[b.cur] {
		panic(fmt.Sprintf("ir: emit into sealed block %d of %s", b.cur.Index, b.m.Name))
	}
	// Corpus generation emits millions of statements; seeding capacity
	// skips the 1→2→4 growslice churn that dominates builder profiles.
	if b.cur.Stmts == nil {
		b.cur.Stmts = make([]Stmt, 0, 8)
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

// NewObj emits dst = new cls. The allocation-site id stays -1 until
// Program.Finalize numbers it.
func (b *MethodBuilder) NewObj(dst, cls string) *MethodBuilder {
	b.emit(&New{Dst: dst, Class: cls, Site: -1})
	return b
}

// Int emits dst = v.
func (b *MethodBuilder) Int(dst string, v int64) *MethodBuilder {
	b.emit(&Const{Dst: dst, Kind: ConstInt, Int: v})
	return b
}

// Bool emits dst = v.
func (b *MethodBuilder) Bool(dst string, v bool) *MethodBuilder {
	b.emit(&Const{Dst: dst, Kind: ConstBool, Bool: v})
	return b
}

// Null emits dst = null.
func (b *MethodBuilder) Null(dst string) *MethodBuilder {
	b.emit(&Const{Dst: dst, Kind: ConstNull})
	return b
}

// Str emits dst = "v".
func (b *MethodBuilder) Str(dst, v string) *MethodBuilder {
	b.emit(&Const{Dst: dst, Kind: ConstString, Str: v})
	return b
}

// Move emits dst = src.
func (b *MethodBuilder) Move(dst, src string) *MethodBuilder {
	b.emit(&Move{Dst: dst, Src: src})
	return b
}

// Load emits dst = obj.field.
func (b *MethodBuilder) Load(dst, obj, field string) *MethodBuilder {
	b.emit(&Load{Dst: dst, Obj: obj, Field: field})
	return b
}

// Store emits obj.field = src.
func (b *MethodBuilder) Store(obj, field, src string) *MethodBuilder {
	b.emit(&Store{Obj: obj, Field: field, Src: src})
	return b
}

// SLoad emits dst = static cls.field.
func (b *MethodBuilder) SLoad(dst, cls, field string) *MethodBuilder {
	b.emit(&StaticLoad{Dst: dst, Class: cls, Field: field})
	return b
}

// SStore emits static cls.field = src.
func (b *MethodBuilder) SStore(cls, field, src string) *MethodBuilder {
	b.emit(&StaticStore{Class: cls, Field: field, Src: src})
	return b
}

// BinOp emits dst = a op c.
func (b *MethodBuilder) BinOp(dst string, op BinOpKind, a, c string) *MethodBuilder {
	b.emit(&BinOp{Dst: dst, Op: op, A: a, B: c})
	return b
}

// Call emits a virtual invocation dst = recv.method(args...). Pass dst ""
// to discard the result. cls is the static type of the receiver.
func (b *MethodBuilder) Call(dst, recv, cls, method string, args ...string) *MethodBuilder {
	b.emit(&Invoke{Kind: InvokeVirtual, Dst: dst, Recv: recv, Class: cls, Method: method, Args: args})
	return b
}

// CallStatic emits dst = cls.method(args...).
func (b *MethodBuilder) CallStatic(dst, cls, method string, args ...string) *MethodBuilder {
	b.emit(&Invoke{Kind: InvokeStatic, Dst: dst, Class: cls, Method: method, Args: args})
	return b
}

// CallSpecial emits a direct (non-virtual) call on recv — constructors and
// super calls.
func (b *MethodBuilder) CallSpecial(dst, recv, cls, method string, args ...string) *MethodBuilder {
	b.emit(&Invoke{Kind: InvokeSpecial, Dst: dst, Recv: recv, Class: cls, Method: method, Args: args})
	return b
}

// If terminates the current block with a conditional branch and returns
// the (then, else) blocks. The current block becomes the then block.
func (b *MethodBuilder) If(a string, op CmpOp, rhs Operand) (then, els *Block) {
	b.emit(&If{A: a, Op: op, B: rhs})
	then, els = b.NewBlock(), b.NewBlock()
	b.cur.Succs = []int{then.Index, els.Index}
	b.sealed[b.cur] = true
	b.cur = then
	return then, els
}

// IfTo is If with caller-supplied targets (for loops back-edges).
func (b *MethodBuilder) IfTo(a string, op CmpOp, rhs Operand, then, els *Block) {
	b.emit(&If{A: a, Op: op, B: rhs})
	b.cur.Succs = []int{then.Index, els.Index}
	b.sealed[b.cur] = true
	b.cur = then
}

// IfStar branches nondeterministically — the "while(*)" / "switch(*)"
// idiom in the paper's generated harnesses (Fig 4). It tests a fresh,
// never-defined variable, which the symbolic executor treats as
// unconstrained.
func (b *MethodBuilder) IfStar() (then, els *Block) {
	b.nstar++
	v := fmt.Sprintf("$star%d", b.nstar)
	return b.If(v, CmpEQ, BoolOperand(true))
}

// Goto terminates the current block with an unconditional jump.
func (b *MethodBuilder) Goto(target *Block) {
	b.cur.Succs = []int{target.Index}
	b.sealed[b.cur] = true
	b.cur = target
}

// GotoNew terminates the current block with a jump to a fresh block and
// continues there.
func (b *MethodBuilder) GotoNew() *Block {
	blk := b.NewBlock()
	b.Goto(blk)
	return blk
}

// Ret terminates the current block with return src ("" for void).
func (b *MethodBuilder) Ret(src string) {
	b.emit(&Return{Src: src})
	b.sealed[b.cur] = true
}

// Build finishes the method. Any unsealed block without successors gets an
// implicit void return so every path terminates.
func (b *MethodBuilder) Build() *Method {
	for _, blk := range b.m.Blocks {
		if !b.sealed[blk] && len(blk.Succs) == 0 {
			blk.Stmts = append(blk.Stmts, &Return{})
		}
	}
	return b.m
}
