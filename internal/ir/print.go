package ir

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Fprint writes a stable textual rendering of the program: the same format
// the parser package reads back. Framework classes are skipped unless
// includeFramework is set — app dumps usually only want app code.
func Fprint(w io.Writer, p *Program, includeFramework bool) {
	for _, c := range p.Classes() {
		if c.Framework && !includeFramework {
			continue
		}
		printClass(w, c)
	}
}

// String renders a single class.
func (c *Class) String() string {
	var b strings.Builder
	printClass(&b, c)
	return b.String()
}

func printClass(w io.Writer, c *Class) {
	fmt.Fprintf(w, "class %s", c.Name)
	if c.Super != "" {
		fmt.Fprintf(w, " extends %s", c.Super)
	}
	if len(c.Interfaces) > 0 {
		ifs := append([]string(nil), c.Interfaces...)
		sort.Strings(ifs)
		fmt.Fprintf(w, " implements %s", strings.Join(ifs, ", "))
	}
	if c.Library {
		fmt.Fprint(w, " library")
	}
	fmt.Fprintln(w, " {")
	for _, f := range c.Fields {
		fmt.Fprintf(w, "  field %s\n", f)
	}
	for _, m := range c.MethodsSorted() {
		printMethod(w, m)
	}
	fmt.Fprintln(w, "}")
}

func printMethod(w io.Writer, m *Method) {
	kw := "method"
	if m.Static {
		kw = "static method"
	}
	fmt.Fprintf(w, "  %s %s(%s) {\n", kw, m.Name, strings.Join(m.Params, ", "))
	for _, blk := range m.Blocks {
		fmt.Fprintf(w, "   b%d:", blk.Index)
		if len(blk.Succs) > 0 {
			succ := make([]string, len(blk.Succs))
			for i, s := range blk.Succs {
				succ[i] = fmt.Sprintf("b%d", s)
			}
			fmt.Fprintf(w, "  -> %s", strings.Join(succ, ", "))
		}
		fmt.Fprintln(w)
		for _, s := range blk.Stmts {
			fmt.Fprintf(w, "      %s\n", s)
		}
	}
	fmt.Fprintln(w, "  }")
}

// Dump renders the whole program including framework classes — a
// debugging aid.
func Dump(p *Program) string {
	var b strings.Builder
	Fprint(&b, p, true)
	return b.String()
}

// ConstIntDefs returns every integer constant assigned to variable v
// anywhere in m (flow-insensitive). Used to resolve constant view ids at
// findViewById sites and constant message codes at sendMessage sites.
func ConstIntDefs(m *Method, v string) []int64 {
	var out []int64
	for _, blk := range m.Blocks {
		for _, s := range blk.Stmts {
			if c, ok := s.(*Const); ok && c.Dst == v && c.Kind == ConstInt {
				out = append(out, c.Int)
			}
		}
	}
	return out
}
