// Package ir defines the intermediate representation SIERRA analyzes.
//
// It plays the role Dalvik bytecode (lifted into WALA IR) plays in the
// paper: a register-based, object-oriented IR with classes, fields,
// virtual dispatch, allocation sites, and per-method control-flow graphs.
// Apps under analysis — and the Android Framework model they run against —
// are both expressed in this IR.
package ir

import (
	"sort"
	"strconv"
)

// Program is a closed world of classes: the app's own classes plus the
// Android Framework model classes injected by the frontend.
type Program struct {
	classes map[string]*Class
	// nextSite hands out program-unique allocation site ids during Finalize.
	nextSite  int
	finalized bool
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{classes: make(map[string]*Class)}
}

// AddClass registers c. It panics on duplicate names: class names are the
// program-wide namespace every analysis keys on, so a collision is a bug in
// the app builder, not a recoverable condition.
func (p *Program) AddClass(c *Class) {
	if _, dup := p.classes[c.Name]; dup {
		panic("ir: duplicate class " + c.Name)
	}
	c.program = p
	p.classes[c.Name] = c
}

// Class looks up a class by name, returning nil if absent.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// Classes returns all classes sorted by name for deterministic iteration.
func (p *Program) Classes() []*Class {
	out := make([]*Class, 0, len(p.classes))
	for _, c := range p.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// NumClasses reports the number of registered classes.
func (p *Program) NumClasses() int { return len(p.classes) }

// Finalize assigns program-unique allocation-site ids to every New
// statement and back-links statements to their methods. Analyses require
// a finalized program. Finalize is re-runnable: harness generation adds
// synthetic classes after an app is built, then finalizes again — already
// numbered sites keep their ids.
func (p *Program) Finalize() {
	for _, c := range p.Classes() {
		for _, m := range c.MethodsSorted() {
			for bi, b := range m.Blocks {
				b.Index = bi
				for si, s := range b.Stmts {
					if n, ok := s.(*New); ok && n.Site < 0 {
						n.Site = p.nextSite
						p.nextSite++
					}
					if setter, ok := s.(interface{ setPos(*Method, int, int) }); ok {
						setter.setPos(m, bi, si)
					}
				}
			}
		}
	}
	p.finalized = true
}

// Finalized reports whether Finalize has run.
func (p *Program) Finalized() bool { return p.finalized }

// NumAllocSites reports how many allocation sites Finalize numbered.
func (p *Program) NumAllocSites() int { return p.nextSite }

// IsSubtype reports whether class sub is a subtype of super (inclusive):
// it walks the superclass chain and all transitively implemented
// interfaces. Unknown classes are not subtypes of anything but themselves.
func (p *Program) IsSubtype(sub, super string) bool {
	if sub == super {
		return true
	}
	c := p.classes[sub]
	for c != nil {
		if c.Name == super {
			return true
		}
		for _, itf := range c.Interfaces {
			if p.IsSubtype(itf, super) {
				return true
			}
		}
		if c.Super == "" {
			return false
		}
		c = p.classes[c.Super]
	}
	return false
}

// ResolveMethod performs virtual dispatch: it finds the implementation of
// method name on class cls, walking up the superclass chain. Returns nil
// if no implementation exists (e.g. a pure framework no-op).
func (p *Program) ResolveMethod(cls, name string) *Method {
	for c := p.classes[cls]; c != nil; c = p.classes[c.Super] {
		if m := c.Methods[name]; m != nil {
			return m
		}
		if c.Super == "" {
			return nil
		}
	}
	return nil
}

// SubclassesOf returns every class that is a subtype of root (excluding
// root itself unless it is concrete), sorted by name. Used for
// over-approximate dispatch on framework supertypes.
func (p *Program) SubclassesOf(root string) []*Class {
	var out []*Class
	for _, c := range p.Classes() {
		if c.Name != root && p.IsSubtype(c.Name, root) {
			out = append(out, c)
		}
	}
	return out
}

// Class is a unit of the program: fields, methods, and its place in the
// hierarchy. Framework model classes have Framework set so the race
// prioritizer can distinguish app code from framework code.
type Class struct {
	Name       string
	Super      string
	Interfaces []string
	Fields     []string
	Methods    map[string]*Method
	// Framework marks Android Framework model classes (not app code).
	Framework bool
	// Library marks third-party library code bundled with the app; it is
	// app-code for analysis purposes but ranks below app code in reports.
	Library bool

	program *Program
}

// NewClass creates a class with no methods.
func NewClass(name, super string, interfaces ...string) *Class {
	return &Class{
		Name:       name,
		Super:      super,
		Interfaces: interfaces,
		Methods:    make(map[string]*Method),
	}
}

// HasField reports whether the class itself declares field f.
func (c *Class) HasField(f string) bool {
	for _, have := range c.Fields {
		if have == f {
			return true
		}
	}
	return false
}

// AddMethod attaches m to the class. Panics on duplicates (no overloading
// in this IR; distinct behaviours get distinct names).
func (c *Class) AddMethod(m *Method) {
	if _, dup := c.Methods[m.Name]; dup {
		panic("ir: duplicate method " + c.Name + "#" + m.Name)
	}
	m.Class = c
	c.Methods[m.Name] = m
}

// MethodsSorted returns the class's methods sorted by name.
func (c *Class) MethodsSorted() []*Method {
	out := make([]*Method, 0, len(c.Methods))
	for _, m := range c.Methods {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Program returns the owning program (nil before AddClass).
func (c *Class) Program() *Program { return c.program }

// Method is a single method body: parameters plus a CFG of basic blocks.
// Block 0 is the entry. The receiver variable is named "this" for instance
// methods.
type Method struct {
	Class  *Class
	Name   string
	Params []string
	Static bool
	Blocks []*Block
}

// QualifiedName returns "Class#method", the analysis-wide method key.
func (m *Method) QualifiedName() string {
	if m.Class == nil {
		return "?#" + m.Name
	}
	return m.Class.Name + "#" + m.Name
}

// Entry returns the entry block, or nil for a body-less method.
func (m *Method) Entry() *Block {
	if len(m.Blocks) == 0 {
		return nil
	}
	return m.Blocks[0]
}

// NumStmts counts statements across all blocks.
func (m *Method) NumStmts() int {
	n := 0
	for _, b := range m.Blocks {
		n += len(b.Stmts)
	}
	return n
}

// Block is a basic block: straight-line statements and successor edges.
// A block ending in *If has exactly two successors: Succs[0] is the true
// branch, Succs[1] the false branch. A block ending in *Return has none.
type Block struct {
	Index int
	Stmts []Stmt
	Succs []int
}

// Pos identifies a statement inside a method. It is the unit keyed on by
// dominance queries and by the backward symbolic executor.
type Pos struct {
	Method *Method
	Block  int
	Index  int
}

// Valid reports whether the position refers to an actual statement.
func (p Pos) Valid() bool {
	return p.Method != nil && p.Block < len(p.Method.Blocks) &&
		p.Index < len(p.Method.Blocks[p.Block].Stmts)
}

// Stmt returns the statement at this position.
func (p Pos) Stmt() Stmt { return p.Method.Blocks[p.Block].Stmts[p.Index] }

func (p Pos) String() string {
	if p.Method == nil {
		return "<nopos>"
	}
	return p.Method.QualifiedName() + "@" + strconv.Itoa(p.Block) + "." + strconv.Itoa(p.Index)
}
