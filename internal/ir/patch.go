package ir

import "fmt"

// ReplaceBody transplants donor's blocks into m, preserving m's identity
// (the *Method pointer every analysis artifact keys on) and its
// allocation-site numbering. It is the mechanism behind incremental
// re-analysis: when a method body changes in ways no fixpoint stage can
// observe (see internal/incremental), the new body is spliced into the
// already-analyzed program instead of re-parsing and re-solving.
//
// The donor body must be block-shape compatible: same block count, same
// per-block statement count, same successor edges, and a New statement
// wherever the old body has one (the caller guarantees this by checking
// skeleton equality first). Each transplanted New keeps the *old*
// statement's Site id, so pointer results that name old site ids remain
// valid. All statements are re-linked to m. Returns an error — and
// leaves m untouched — if the shapes disagree.
func (m *Method) ReplaceBody(donor *Method) error {
	if len(donor.Blocks) != len(m.Blocks) {
		return fmt.Errorf("ir: ReplaceBody %s: block count %d != %d",
			m.QualifiedName(), len(donor.Blocks), len(m.Blocks))
	}
	for bi, ob := range m.Blocks {
		nb := donor.Blocks[bi]
		if len(nb.Stmts) != len(ob.Stmts) {
			return fmt.Errorf("ir: ReplaceBody %s: block %d stmt count %d != %d",
				m.QualifiedName(), bi, len(nb.Stmts), len(ob.Stmts))
		}
		if len(nb.Succs) != len(ob.Succs) {
			return fmt.Errorf("ir: ReplaceBody %s: block %d succ count mismatch",
				m.QualifiedName(), bi)
		}
		for i, s := range ob.Succs {
			if nb.Succs[i] != s {
				return fmt.Errorf("ir: ReplaceBody %s: block %d succs differ",
					m.QualifiedName(), bi)
			}
		}
		for si, os := range ob.Stmts {
			_, oldNew := os.(*New)
			_, newNew := nb.Stmts[si].(*New)
			if oldNew != newNew {
				return fmt.Errorf("ir: ReplaceBody %s: block %d stmt %d allocation mismatch",
					m.QualifiedName(), bi, si)
			}
		}
	}
	for bi, ob := range m.Blocks {
		nb := donor.Blocks[bi]
		nb.Index = bi
		for si, os := range ob.Stmts {
			ns := nb.Stmts[si]
			if on, ok := os.(*New); ok {
				ns.(*New).Site = on.Site
			}
			if setter, ok := ns.(interface{ setPos(*Method, int, int) }); ok {
				setter.setPos(m, bi, si)
			}
		}
		m.Blocks[bi] = nb
	}
	return nil
}

// ReplaceBodyFlex transplants donor's blocks into m like ReplaceBody,
// but tolerates per-block statement-count drift: each donor block may
// extend or truncate the old block's statement list, as long as the
// block graph is unchanged (same block count, same successor edges) and
// no old allocation site is lost. A donor New positioned over an old
// New keeps the old Site id; a donor New anywhere else (an insertion)
// gets Site reset to -1 so a subsequent Program.Finalize assigns it a
// fresh id (donor programs are finalized independently, so their raw
// Site ids can collide with m's program). An old New with no donor New
// at its index is an error: retained pointer facts name that site, and
// dropping it silently would corrupt them.
//
// ReplaceBodyFlex enforces only structural compatibility. Whether the
// drifted statements are semantically safe to splice (no flow into
// already-solved keys) is the caller's planner's job — see
// internal/incremental's stage planner. Returns an error and leaves m
// untouched when the structure disagrees.
func (m *Method) ReplaceBodyFlex(donor *Method) error {
	if len(donor.Blocks) != len(m.Blocks) {
		return fmt.Errorf("ir: ReplaceBodyFlex %s: block count %d != %d",
			m.QualifiedName(), len(donor.Blocks), len(m.Blocks))
	}
	for bi, ob := range m.Blocks {
		nb := donor.Blocks[bi]
		if len(nb.Succs) != len(ob.Succs) {
			return fmt.Errorf("ir: ReplaceBodyFlex %s: block %d succ count mismatch",
				m.QualifiedName(), bi)
		}
		for i, s := range ob.Succs {
			if nb.Succs[i] != s {
				return fmt.Errorf("ir: ReplaceBodyFlex %s: block %d succs differ",
					m.QualifiedName(), bi)
			}
		}
		for si, os := range ob.Stmts {
			if _, ok := os.(*New); !ok {
				continue
			}
			if si >= len(nb.Stmts) {
				return fmt.Errorf("ir: ReplaceBodyFlex %s: block %d stmt %d drops allocation site",
					m.QualifiedName(), bi, si)
			}
			if _, ok := nb.Stmts[si].(*New); !ok {
				return fmt.Errorf("ir: ReplaceBodyFlex %s: block %d stmt %d drops allocation site",
					m.QualifiedName(), bi, si)
			}
		}
	}
	for bi, ob := range m.Blocks {
		nb := donor.Blocks[bi]
		nb.Index = bi
		for si, ns := range nb.Stmts {
			if nn, ok := ns.(*New); ok {
				nn.Site = -1 // fresh site unless matched below
				if si < len(ob.Stmts) {
					if on, ok := ob.Stmts[si].(*New); ok {
						nn.Site = on.Site
					}
				}
			}
			if setter, ok := ns.(interface{ setPos(*Method, int, int) }); ok {
				setter.setPos(m, bi, si)
			}
		}
		m.Blocks[bi] = nb
	}
	return nil
}
