package ir

import (
	"fmt"
	"strings"
)

// Stmt is one IR statement. All statements operate on method-local
// variables (registers); heap interaction happens only through Load/Store
// and their static counterparts, which is what makes access collection
// for race detection straightforward.
type Stmt interface {
	fmt.Stringer
	stmt()
	// Pos returns the statement's position, valid after Program.Finalize.
	Pos() Pos
}

// base carries the back-link filled in by Finalize.
type base struct{ pos Pos }

func (b *base) stmt()    {}
func (b *base) Pos() Pos { return b.pos }
func (b *base) setPos(m *Method, block, index int) {
	b.pos = Pos{Method: m, Block: block, Index: index}
}

// New allocates an instance of Class into Dst. Site is the program-unique
// allocation-site id assigned by Finalize (-1 until then); it is the
// abstract-object identity used by the pointer analysis.
type New struct {
	base
	Dst   string
	Class string
	Site  int
}

func (s *New) String() string { return fmt.Sprintf("%s = new %s", s.Dst, s.Class) }

// ConstKind discriminates constant values.
type ConstKind int

const (
	ConstInt ConstKind = iota
	ConstBool
	ConstNull
	ConstString
)

// Const loads a constant into Dst.
type Const struct {
	base
	Dst  string
	Kind ConstKind
	Int  int64
	Bool bool
	Str  string
}

func (s *Const) String() string {
	switch s.Kind {
	case ConstInt:
		return fmt.Sprintf("%s = %d", s.Dst, s.Int)
	case ConstBool:
		return fmt.Sprintf("%s = %t", s.Dst, s.Bool)
	case ConstNull:
		return s.Dst + " = null"
	default:
		return fmt.Sprintf("%s = %q", s.Dst, s.Str)
	}
}

// Move copies Src into Dst.
type Move struct {
	base
	Dst, Src string
}

func (s *Move) String() string { return s.Dst + " = " + s.Src }

// Load reads Obj.Field into Dst — a heap read access.
type Load struct {
	base
	Dst, Obj, Field string
}

func (s *Load) String() string { return fmt.Sprintf("%s = %s.%s", s.Dst, s.Obj, s.Field) }

// Store writes Src into Obj.Field — a heap write access.
type Store struct {
	base
	Obj, Field, Src string
}

func (s *Store) String() string { return fmt.Sprintf("%s.%s = %s", s.Obj, s.Field, s.Src) }

// StaticLoad reads the static field Class.Field into Dst.
type StaticLoad struct {
	base
	Dst, Class, Field string
}

func (s *StaticLoad) String() string {
	return fmt.Sprintf("%s = static %s.%s", s.Dst, s.Class, s.Field)
}

// StaticStore writes Src into static field Class.Field.
type StaticStore struct {
	base
	Class, Field, Src string
}

func (s *StaticStore) String() string {
	return fmt.Sprintf("static %s.%s = %s", s.Class, s.Field, s.Src)
}

// BinOpKind is an arithmetic/logical operator.
type BinOpKind int

const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
)

func (op BinOpKind) String() string {
	return [...]string{"+", "-", "*", "&", "|", "^"}[op]
}

// BinOp computes Dst = A op B.
type BinOp struct {
	base
	Dst  string
	Op   BinOpKind
	A, B string
}

func (s *BinOp) String() string { return fmt.Sprintf("%s = %s %s %s", s.Dst, s.A, s.Op, s.B) }

// InvokeKind distinguishes dispatch flavours. Per the paper's hybrid
// context sensitivity, virtual dispatch uses k-obj contexts while static
// invocations use k-cfa contexts.
type InvokeKind int

const (
	// InvokeVirtual dispatches on the dynamic type of Recv.
	InvokeVirtual InvokeKind = iota
	// InvokeStatic calls Class#Method directly; Recv is empty.
	InvokeStatic
	// InvokeSpecial calls Class#Method directly on Recv (constructors,
	// super calls) without dynamic dispatch.
	InvokeSpecial
)

// Invoke calls a method. Framework APIs with concurrency or GUI semantics
// (AsyncTask.execute, Handler.post, findViewById, …) appear as Invokes on
// framework classes and are recognized by the actions/frontend packages.
type Invoke struct {
	base
	Kind   InvokeKind
	Dst    string // "" when the result is unused
	Recv   string // receiver variable; "" for static
	Class  string // static type of the receiver / declaring class
	Method string
	Args   []string
}

func (s *Invoke) String() string {
	var b strings.Builder
	if s.Dst != "" {
		b.WriteString(s.Dst)
		b.WriteString(" = ")
	}
	switch s.Kind {
	case InvokeStatic:
		b.WriteString(s.Class)
	default:
		b.WriteString(s.Recv)
	}
	b.WriteByte('.')
	b.WriteString(s.Method)
	b.WriteByte('(')
	b.WriteString(strings.Join(s.Args, ", "))
	b.WriteByte(')')
	return b.String()
}

// CmpOp is a comparison operator for If conditions.
type CmpOp int

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (op CmpOp) String() string {
	return [...]string{"==", "!=", "<", "<=", ">", ">="}[op]
}

// Negate returns the complementary operator.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpEQ:
		return CmpNE
	case CmpNE:
		return CmpEQ
	case CmpLT:
		return CmpGE
	case CmpLE:
		return CmpGT
	case CmpGT:
		return CmpLE
	default:
		return CmpLT
	}
}

// Operand is either a variable or a constant on the right side of a
// comparison.
type Operand struct {
	Var   string // set when IsVar
	IsVar bool
	Kind  ConstKind // valid when !IsVar
	Int   int64
	Bool  bool
}

// VarOperand wraps a variable name as an operand.
func VarOperand(v string) Operand { return Operand{Var: v, IsVar: true} }

// IntOperand wraps an integer constant.
func IntOperand(v int64) Operand { return Operand{Kind: ConstInt, Int: v} }

// BoolOperand wraps a boolean constant.
func BoolOperand(v bool) Operand { return Operand{Kind: ConstBool, Bool: v} }

// NullOperand is the null constant.
func NullOperand() Operand { return Operand{Kind: ConstNull} }

func (o Operand) String() string {
	if o.IsVar {
		return o.Var
	}
	switch o.Kind {
	case ConstInt:
		return fmt.Sprintf("%d", o.Int)
	case ConstBool:
		return fmt.Sprintf("%t", o.Bool)
	case ConstNull:
		return "null"
	default:
		return "<const>"
	}
}

// If is a block terminator comparing variable A against operand B.
// Succs[0] of the enclosing block is taken when the condition holds,
// Succs[1] otherwise. The nondeterministic-choice idiom used by harnesses
// ("while(*) switch(*)") is encoded as an If on a variable that is never
// defined — the symbolic executor treats it as unconstrained.
type If struct {
	base
	A  string
	Op CmpOp
	B  Operand
}

func (s *If) String() string { return fmt.Sprintf("if %s %s %s", s.A, s.Op, s.B) }

// Return ends the method, optionally yielding Src.
type Return struct {
	base
	Src string // "" for void
}

func (s *Return) String() string {
	if s.Src == "" {
		return "return"
	}
	return "return " + s.Src
}
