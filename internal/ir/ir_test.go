package ir

import (
	"strings"
	"testing"
)

func buildDiamond(t *testing.T) (*Program, *Method) {
	t.Helper()
	p := NewProgram()
	c := NewClass("A", "")
	c.Fields = []string{"x"}
	b := NewMethodBuilder("m", "p0")
	b.Int("i", 1)
	then, els := b.If("i", CmpEQ, IntOperand(1))
	b.SetBlock(then)
	b.Store("this", "x", "i")
	join := b.GotoNew()
	b.SetBlock(els)
	b.Load("y", "this", "x")
	b.Goto(join)
	b.SetBlock(join)
	b.Ret("")
	c.AddMethod(b.Build())
	p.AddClass(c)
	p.Finalize()
	return p, c.Methods["m"]
}

func TestBuilderDiamondShape(t *testing.T) {
	_, m := buildDiamond(t)
	if len(m.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(m.Blocks))
	}
	entry := m.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("entry succs = %v, want 2", entry.Succs)
	}
	if _, ok := entry.Stmts[len(entry.Stmts)-1].(*If); !ok {
		t.Fatalf("entry does not end in If: %v", entry.Stmts)
	}
	// Both arms converge on the join block.
	if m.Blocks[entry.Succs[0]].Succs[0] != m.Blocks[entry.Succs[1]].Succs[0] {
		t.Fatalf("arms do not join: %v vs %v",
			m.Blocks[entry.Succs[0]].Succs, m.Blocks[entry.Succs[1]].Succs)
	}
}

func TestFinalizeAssignsPositionsAndSites(t *testing.T) {
	p, m := buildDiamond(t)
	if !p.Finalized() {
		t.Fatal("program not finalized")
	}
	for bi, blk := range m.Blocks {
		for si, s := range blk.Stmts {
			pos := s.Pos()
			if pos.Method != m || pos.Block != bi || pos.Index != si {
				t.Fatalf("stmt %v pos = %v, want %s@%d.%d", s, pos, m.QualifiedName(), bi, si)
			}
			if !pos.Valid() {
				t.Fatalf("pos %v not valid", pos)
			}
			if pos.Stmt() != s {
				t.Fatalf("pos.Stmt mismatch at %v", pos)
			}
		}
	}
}

func TestAllocSitesAreUnique(t *testing.T) {
	p := NewProgram()
	c := NewClass("A", "")
	b := NewMethodBuilder("m")
	b.NewObj("a", "A").NewObj("b", "A").NewObj("c", "A")
	b.Ret("")
	c.AddMethod(b.Build())
	p.AddClass(c)
	p.Finalize()
	seen := map[int]bool{}
	for _, blk := range c.Methods["m"].Blocks {
		for _, s := range blk.Stmts {
			if n, ok := s.(*New); ok {
				if seen[n.Site] {
					t.Fatalf("duplicate site %d", n.Site)
				}
				seen[n.Site] = true
			}
		}
	}
	if len(seen) != 3 || p.NumAllocSites() != 3 {
		t.Fatalf("sites = %d (program says %d), want 3", len(seen), p.NumAllocSites())
	}
}

func TestIsSubtypeWalksSupersAndInterfaces(t *testing.T) {
	p := NewProgram()
	p.AddClass(NewClass("Object", ""))
	p.AddClass(NewClass("Runnable", "")) // interface modelled as a class
	p.AddClass(NewClass("Activity", "Object"))
	p.AddClass(NewClass("MyActivity", "Activity", "Runnable"))
	p.AddClass(NewClass("SubActivity", "MyActivity"))

	cases := []struct {
		sub, super string
		want       bool
	}{
		{"MyActivity", "Activity", true},
		{"MyActivity", "Object", true},
		{"MyActivity", "Runnable", true},
		{"SubActivity", "Runnable", true}, // inherited interface
		{"Activity", "MyActivity", false},
		{"Activity", "Activity", true},
		{"Nope", "Object", false},
		{"Nope", "Nope", true}, // reflexive even for unknown names
	}
	for _, c := range cases {
		if got := p.IsSubtype(c.sub, c.super); got != c.want {
			t.Errorf("IsSubtype(%s, %s) = %t, want %t", c.sub, c.super, got, c.want)
		}
	}
}

func TestResolveMethodWalksSuperChain(t *testing.T) {
	p := NewProgram()
	base := NewClass("Base", "")
	mb := NewMethodBuilder("foo")
	mb.Ret("")
	base.AddMethod(mb.Build())
	derived := NewClass("Derived", "Base")
	p.AddClass(base)
	p.AddClass(derived)

	if m := p.ResolveMethod("Derived", "foo"); m == nil || m.Class != base {
		t.Fatalf("ResolveMethod(Derived, foo) = %v, want Base#foo", m)
	}
	if m := p.ResolveMethod("Derived", "bar"); m != nil {
		t.Fatalf("ResolveMethod(Derived, bar) = %v, want nil", m)
	}
	// Override shadows the base implementation.
	ob := NewMethodBuilder("foo")
	ob.Ret("")
	derived.AddMethod(ob.Build())
	if m := p.ResolveMethod("Derived", "foo"); m == nil || m.Class != derived {
		t.Fatalf("override not found: %v", m)
	}
}

func TestSubclassesOf(t *testing.T) {
	p := NewProgram()
	p.AddClass(NewClass("Task", ""))
	p.AddClass(NewClass("A", "Task"))
	p.AddClass(NewClass("B", "A"))
	p.AddClass(NewClass("C", ""))
	subs := p.SubclassesOf("Task")
	if len(subs) != 2 || subs[0].Name != "A" || subs[1].Name != "B" {
		t.Fatalf("SubclassesOf(Task) = %v", subs)
	}
}

func TestDuplicateClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate class")
		}
	}()
	p := NewProgram()
	p.AddClass(NewClass("A", ""))
	p.AddClass(NewClass("A", ""))
}

func TestDuplicateMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate method")
		}
	}()
	c := NewClass("A", "")
	b1 := NewMethodBuilder("m")
	b1.Ret("")
	c.AddMethod(b1.Build())
	b2 := NewMethodBuilder("m")
	b2.Ret("")
	c.AddMethod(b2.Build())
}

func TestBuildSealsOpenBlocks(t *testing.T) {
	b := NewMethodBuilder("m")
	b.Int("x", 5) // never returns explicitly
	m := b.Build()
	last := m.Blocks[0].Stmts[len(m.Blocks[0].Stmts)-1]
	if _, ok := last.(*Return); !ok {
		t.Fatalf("open block not sealed with Return: %v", last)
	}
}

func TestEmitIntoSealedBlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic emitting into sealed block")
		}
	}()
	b := NewMethodBuilder("m")
	b.Ret("")
	b.Int("x", 1) // current block already sealed by Ret
}

func TestIfStarUsesFreshVars(t *testing.T) {
	b := NewMethodBuilder("m")
	_, e1 := b.IfStar()
	b.Ret("")
	b.SetBlock(e1)
	_, e2 := b.IfStar()
	b.Ret("")
	b.SetBlock(e2)
	b.Ret("")
	m := b.Build()
	vars := map[string]bool{}
	for _, blk := range m.Blocks {
		for _, s := range blk.Stmts {
			if iff, ok := s.(*If); ok {
				if vars[iff.A] {
					t.Fatalf("star var %s reused", iff.A)
				}
				vars[iff.A] = true
			}
		}
	}
	if len(vars) != 2 {
		t.Fatalf("star vars = %d, want 2", len(vars))
	}
}

func TestStmtStrings(t *testing.T) {
	cases := []struct {
		s    Stmt
		want string
	}{
		{&New{Dst: "a", Class: "C"}, "a = new C"},
		{&Const{Dst: "a", Kind: ConstInt, Int: 7}, "a = 7"},
		{&Const{Dst: "a", Kind: ConstBool, Bool: true}, "a = true"},
		{&Const{Dst: "a", Kind: ConstNull}, "a = null"},
		{&Const{Dst: "a", Kind: ConstString, Str: "s"}, `a = "s"`},
		{&Move{Dst: "a", Src: "b"}, "a = b"},
		{&Load{Dst: "a", Obj: "o", Field: "f"}, "a = o.f"},
		{&Store{Obj: "o", Field: "f", Src: "a"}, "o.f = a"},
		{&StaticLoad{Dst: "a", Class: "C", Field: "f"}, "a = static C.f"},
		{&StaticStore{Class: "C", Field: "f", Src: "a"}, "static C.f = a"},
		{&BinOp{Dst: "a", Op: OpAdd, A: "b", B: "c"}, "a = b + c"},
		{&Invoke{Kind: InvokeVirtual, Dst: "r", Recv: "o", Class: "C", Method: "m", Args: []string{"x"}}, "r = o.m(x)"},
		{&Invoke{Kind: InvokeStatic, Class: "C", Method: "m"}, "C.m()"},
		{&If{A: "x", Op: CmpNE, B: NullOperand()}, "if x != null"},
		{&Return{}, "return"},
		{&Return{Src: "v"}, "return v"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCmpOpNegate(t *testing.T) {
	ops := []CmpOp{CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE}
	for _, op := range ops {
		if op.Negate().Negate() != op {
			t.Errorf("double negate of %v = %v", op, op.Negate().Negate())
		}
		if op.Negate() == op {
			t.Errorf("negate of %v is itself", op)
		}
	}
}

func TestProgramPrintRoundTripShape(t *testing.T) {
	p, _ := buildDiamond(t)
	out := Dump(p)
	for _, want := range []string{"class A {", "field x", "method m(p0)", "if i == 1", "this.x = i"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestMethodQualifiedNameAndCounts(t *testing.T) {
	_, m := buildDiamond(t)
	if m.QualifiedName() != "A#m" {
		t.Fatalf("QualifiedName = %q", m.QualifiedName())
	}
	if m.NumStmts() < 5 {
		t.Fatalf("NumStmts = %d, want >= 5", m.NumStmts())
	}
	if m.Entry() == nil || m.Entry().Index != 0 {
		t.Fatalf("Entry = %v", m.Entry())
	}
}

func TestValidateAcceptsBuilderOutput(t *testing.T) {
	p, _ := buildDiamond(t)
	if err := p.Validate(); err != nil {
		t.Fatalf("builder output rejected: %v", err)
	}
}

func TestValidateRejectsMalformedMethods(t *testing.T) {
	mk := func(blocks []*Block) *Program {
		p := NewProgram()
		c := NewClass("Bad", "")
		c.AddMethod(&Method{Name: "m", Blocks: blocks})
		p.AddClass(c)
		return p
	}
	cases := []struct {
		name   string
		blocks []*Block
	}{
		{"succ out of range", []*Block{{Stmts: []Stmt{&Return{}}, Succs: []int{3}}}},
		{"if not terminator", []*Block{
			{Stmts: []Stmt{&If{A: "x", Op: CmpEQ, B: IntOperand(0)}, &Return{}}, Succs: []int{0, 0}},
		}},
		{"if with one successor", []*Block{
			{Stmts: []Stmt{&If{A: "x", Op: CmpEQ, B: IntOperand(0)}}, Succs: []int{0}},
		}},
		{"stmt after return", []*Block{
			{Stmts: []Stmt{&Return{}, &Const{Dst: "x", Kind: ConstInt}}},
		}},
		{"return with successors", []*Block{
			{Stmts: []Stmt{&Return{}}, Succs: []int{0}},
		}},
		{"multi-succ without if", []*Block{
			{Stmts: []Stmt{&Const{Dst: "x", Kind: ConstInt}}, Succs: []int{0, 0}},
		}},
		{"empty multi-succ block", []*Block{
			{Succs: []int{0, 0}},
		}},
	}
	for _, c := range cases {
		if err := mk(c.blocks).Validate(); err == nil {
			t.Errorf("%s: not rejected", c.name)
		}
	}
	// Framework classes are exempt (trusted construction).
	p := NewProgram()
	fw := NewClass("FW", "")
	fw.Framework = true
	fw.AddMethod(&Method{Name: "m", Blocks: []*Block{{Succs: []int{9}}}})
	p.AddClass(fw)
	if err := p.Validate(); err != nil {
		t.Errorf("framework class should be exempt: %v", err)
	}
}
