package appfile

import (
	"bytes"
	"strings"
	"testing"

	"sierra/internal/apk"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/ir"
)

// roundTrip serializes and reparses an app.
func roundTrip(t *testing.T, app *apk.App) *apk.App {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, app); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v\n%s", err, buf.String())
	}
	return back
}

func appClasses(app *apk.App) int {
	n := 0
	for _, c := range app.Program.Classes() {
		if !c.Framework {
			n++
		}
	}
	return n
}

func TestRoundTripHandmadeApps(t *testing.T) {
	for _, mk := range []func() *apk.App{corpus.NewsApp, corpus.DatabaseApp, corpus.SudokuTimerApp, corpus.NullGuardApp} {
		app := mk()
		back := roundTrip(t, app)
		if back.Name != app.Name {
			t.Errorf("name %q != %q", back.Name, app.Name)
		}
		if appClasses(back) != appClasses(app) {
			t.Errorf("%s: class count %d != %d", app.Name, appClasses(back), appClasses(app))
		}
		if len(back.Manifest.Activities) != len(app.Manifest.Activities) {
			t.Errorf("%s: activities differ", app.Name)
		}
		if len(back.Layouts) != len(app.Layouts) {
			t.Errorf("%s: layouts differ", app.Name)
		}
	}
}

func TestRoundTripPreservesAnalysisResults(t *testing.T) {
	orig := corpus.NewsApp()
	back := roundTrip(t, corpus.NewsApp())
	r1 := core.Analyze(orig, core.Options{})
	r2 := core.Analyze(back, core.Options{})
	if r1.NumActions() != r2.NumActions() {
		t.Errorf("actions %d != %d", r1.NumActions(), r2.NumActions())
	}
	if len(r1.RacyPairs) != len(r2.RacyPairs) {
		t.Errorf("pairs %d != %d", len(r1.RacyPairs), len(r2.RacyPairs))
	}
	if r1.TrueRaces() != r2.TrueRaces() {
		t.Errorf("races %d != %d", r1.TrueRaces(), r2.TrueRaces())
	}
}

func TestRoundTripGeneratedApp(t *testing.T) {
	row, _ := corpus.RowByName("VuDroid")
	app, _ := corpus.NamedApp(row)
	back := roundTrip(t, app)
	if appClasses(back) != appClasses(app) {
		t.Errorf("class count %d != %d", appClasses(back), appClasses(app))
	}
}

func TestRoundTripStatements(t *testing.T) {
	orig := corpus.SudokuTimerApp()
	back := roundTrip(t, corpus.SudokuTimerApp())
	// Statement-level equality via the canonical printer.
	var b1, b2 bytes.Buffer
	if err := Write(&b1, orig); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, back); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("second round trip not a fixpoint")
	}
	for _, want := range []string{"if flag == bool true", "store a mAccumTime t", "call v _ v android.view.View postDelayed this delay"} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("serialization missing %q", want)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"view main 1 T -1",                 // view before layout
		"field C f",                        // field before class
		"block C m 0",                      // block outside method
		"class A\nmethod A m\nblock A m 5", // out-of-order block
		"class A\nmethod A m\nblock A m 0\nfrobnicate x",
		"app x\nactivity Missing", // validation: unknown activity class
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

func TestReadMinimalApp(t *testing.T) {
	src := `
app mini
package com.mini
activity Main layout l
layout l
view l 1 android.view.View -1
view l 2 android.widget.Button 1
xmlcb l 2 onClick onTap
class Main extends android.app.Activity
method Main onCreate
block Main onCreate 0
ret _
method Main onTap params v
block Main onTap 0
ret _
`
	app, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "mini" || len(app.Manifest.Activities) != 1 {
		t.Fatalf("bad app %+v", app.Manifest)
	}
	if v := app.FindView("l", 2); v == nil || v.XMLCallbacks["onClick"] != "onTap" {
		t.Fatal("xml callback lost")
	}
	res := core.Analyze(app, core.Options{})
	if res.NumHarnesses() != 1 {
		t.Fatal("parsed app not analyzable")
	}
	found := false
	for _, a := range res.Registry.Actions() {
		if a.Callback == "onTap" {
			found = true
		}
	}
	if !found {
		t.Error("XML callback action missing after parse")
	}
}

func TestStmtLineCoversAllKinds(t *testing.T) {
	stmts := []ir.Stmt{
		&ir.New{Dst: "a", Class: "C", Site: -1},
		&ir.Const{Dst: "a", Kind: ir.ConstString, Str: "hi there"},
		&ir.BinOp{Dst: "a", Op: ir.OpXor, A: "b", B: "c"},
		&ir.Invoke{Kind: ir.InvokeStatic, Class: "C", Method: "m"},
		&ir.If{A: "x", Op: ir.CmpLE, B: ir.VarOperand("y")},
	}
	for _, s := range stmts {
		line := StmtLine(s)
		got, err := parseStmt(strings.Fields(line), line)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if StmtLine(got) != line {
			t.Errorf("round trip %q -> %q", line, StmtLine(got))
		}
	}
}

func TestReadNeverPanicsOnTruncation(t *testing.T) {
	// Any line-prefix of a valid file must either parse or error — never
	// panic. This guards every "statement before block"-style invariant.
	var buf bytes.Buffer
	if err := Write(&buf, corpus.SudokuTimerApp()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	for n := 0; n <= len(lines); n += 3 {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at %d lines: %v", n, r)
				}
			}()
			_, _ = Read(strings.NewReader(strings.Join(lines[:n], "\n")))
		}()
	}
}

func TestReadNeverPanicsOnFieldMutations(t *testing.T) {
	// Dropping random tokens from statement lines must not panic.
	var buf bytes.Buffer
	if err := Write(&buf, corpus.NewsApp()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	for i := 3; i < len(lines); i++ {
		mutated := append([]string(nil), lines...)
		f := strings.Fields(mutated[i])
		if len(f) > 1 {
			mutated[i] = strings.Join(f[:len(f)-1], " ") // drop last token
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic mutating line %d (%q): %v", i, lines[i], r)
				}
			}()
			_, _ = Read(strings.NewReader(strings.Join(mutated, "\n")))
		}()
	}
}
