// Package appfile serializes apps to a line-oriented textual format and
// parses them back. It lets cmd/corpusgen dump generated apps for
// inspection and cmd/sierra analyze hand-written .app files, standing in
// for the APK container real tooling consumes.
//
// Format (one directive per line, # comments):
//
//	app NAME
//	package PKG
//	installs TEXT
//	activity CLASS [layout NAME]
//	service CLASS
//	receiver CLASS [filter ACTION]
//	layout NAME
//	view LAYOUT ID TYPE PARENTID            (PARENTID -1 = root)
//	xmlcb LAYOUT ID KIND METHOD
//	class NAME [extends SUPER] [implements I1,I2] [library]
//	field CLASS NAME
//	method CLASS NAME [static] [params P1,P2]
//	block CLASS METHOD INDEX [succ S1,S2]
//	<stmt lines, see below>
//
// Statements (inside the current block):
//
//	new DST CLASS
//	const DST int N | const DST bool true|false | const DST null | const DST str "S"
//	move DST SRC
//	load DST OBJ FIELD
//	store OBJ FIELD SRC
//	sload DST CLASS FIELD
//	sstore CLASS FIELD SRC
//	binop DST OP A B
//	call v|s|p DST RECV CLASS METHOD [ARGS...]   (DST/RECV "_" = none)
//	if A OP (var V | int N | bool B | null)
//	ret SRC|_
package appfile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sierra/internal/apk"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

// Write serializes the app (manifest, layouts, and non-framework
// classes).
func Write(w io.Writer, app *apk.App) error {
	_, err := w.Write(appendApp(make([]byte, 0, 1<<14), app))
	return err
}

// appendApp renders the whole canonical serialization into b's spare
// capacity. Serialization is the corpus-generation hot path — every
// streamed app pays it once — so the entire format is emitted with
// byte appends (strconv.Append* for numbers), never fmt.
func appendApp(b []byte, app *apk.App) []byte {
	b = append(b, "app "...)
	b = append(b, app.Name...)
	b = append(b, '\n')
	if app.Manifest.Package != "" {
		b = append(b, "package "...)
		b = append(b, app.Manifest.Package...)
		b = append(b, '\n')
	}
	if app.Installs != "" {
		b = append(b, "installs "...)
		b = append(b, app.Installs...)
		b = append(b, '\n')
	}
	for _, c := range app.Manifest.Activities {
		b = append(b, "activity "...)
		b = append(b, c.Class...)
		if c.Layout != "" {
			b = append(b, " layout "...)
			b = append(b, c.Layout...)
		}
		b = append(b, '\n')
	}
	for _, c := range app.Manifest.Services {
		b = append(b, "service "...)
		b = append(b, c.Class...)
		b = append(b, '\n')
	}
	for _, c := range app.Manifest.Receivers {
		b = append(b, "receiver "...)
		b = append(b, c.Class...)
		if len(c.IntentFilters) > 0 {
			b = append(b, " filter "...)
			b = append(b, c.IntentFilters[0]...)
		}
		b = append(b, '\n')
	}
	names := make([]string, 0, len(app.Layouts))
	for n := range app.Layouts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		b = append(b, "layout "...)
		b = append(b, n...)
		b = append(b, '\n')
		b = appendViews(b, n, app.Layouts[n].Root, -1)
	}
	for _, c := range app.Program.Classes() {
		if c.Framework {
			continue
		}
		b = appendClass(b, c)
	}
	return b
}

// Bytes serializes the app to its canonical textual form — the
// serialization Write produces, in memory. Because Write emits layouts,
// fields, methods, and callbacks in sorted/declaration order, two
// structurally identical apps yield identical bytes, which is what
// makes the form usable as a content-addressed cache key (see
// internal/batch). Serialize before analysis: harness generation
// extends the program with synthetic classes that would otherwise leak
// into the digest.
func Bytes(app *apk.App) ([]byte, error) {
	return appendApp(make([]byte, 0, 1<<14), app), nil
}

// AppendBytes is Bytes writing into dst's spare capacity — the
// streaming pipeline's allocation-recycling form. dst is typically a
// pooled buffer sliced to length 0; the returned slice shares its
// backing array when capacity suffices.
func AppendBytes(dst []byte, app *apk.App) ([]byte, error) {
	return appendApp(dst, app), nil
}

func appendViews(b []byte, layout string, v *apk.View, parent int) []byte {
	if v == nil {
		return b
	}
	b = append(b, "view "...)
	b = append(b, layout...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(v.ID), 10)
	b = append(b, ' ')
	b = append(b, v.Type...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(parent), 10)
	b = append(b, '\n')
	kinds := make([]string, 0, len(v.XMLCallbacks))
	for k := range v.XMLCallbacks {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		b = append(b, "xmlcb "...)
		b = append(b, layout...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, int64(v.ID), 10)
		b = append(b, ' ')
		b = append(b, k...)
		b = append(b, ' ')
		b = append(b, v.XMLCallbacks[k]...)
		b = append(b, '\n')
	}
	for _, c := range v.Children {
		b = appendViews(b, layout, c, v.ID)
	}
	return b
}

// appendJoin appends parts separated by commas (strings.Join without
// the intermediate string).
func appendJoin(b []byte, parts []string) []byte {
	for i, p := range parts {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, p...)
	}
	return b
}

func appendClass(b []byte, c *ir.Class) []byte {
	b = append(b, "class "...)
	b = append(b, c.Name...)
	if c.Super != "" {
		b = append(b, " extends "...)
		b = append(b, c.Super...)
	}
	if len(c.Interfaces) > 0 {
		b = append(b, " implements "...)
		b = appendJoin(b, c.Interfaces)
	}
	if c.Library {
		b = append(b, " library"...)
	}
	b = append(b, '\n')
	for _, f := range c.Fields {
		b = append(b, "field "...)
		b = append(b, c.Name...)
		b = append(b, ' ')
		b = append(b, f...)
		b = append(b, '\n')
	}
	for _, m := range c.MethodsSorted() {
		b = append(b, "method "...)
		b = append(b, c.Name...)
		b = append(b, ' ')
		b = append(b, m.Name...)
		if m.Static {
			b = append(b, " static"...)
		}
		if len(m.Params) > 0 {
			b = append(b, " params "...)
			b = appendJoin(b, m.Params)
		}
		b = append(b, '\n')
		for bi, blk := range m.Blocks {
			b = append(b, "block "...)
			b = append(b, c.Name...)
			b = append(b, ' ')
			b = append(b, m.Name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, int64(bi), 10)
			if len(blk.Succs) > 0 {
				b = append(b, " succ "...)
				for i, s := range blk.Succs {
					if i > 0 {
						b = append(b, ',')
					}
					b = strconv.AppendInt(b, int64(s), 10)
				}
			}
			b = append(b, '\n')
			for _, s := range blk.Stmts {
				b = appendStmt(b, s)
				b = append(b, '\n')
			}
		}
	}
	return b
}

// StmtLine renders one statement in the canonical .app syntax — the
// exact line Write emits. Exported for internal/incremental, whose
// per-method fingerprints are hashes over these canonical lines (so the
// fingerprint and the serialized form can never drift apart).
func StmtLine(s ir.Stmt) string { return string(appendStmt(nil, s)) }

// appendOrUnderscore appends v, or "_" when v is empty (the format's
// none marker for optional operands).
func appendOrUnderscore(b []byte, v string) []byte {
	if v == "" {
		return append(b, '_')
	}
	return append(b, v...)
}

// appendStmt renders the canonical statement text into b. It is both
// the serialization and fingerprint hot path — two digests per
// statement per serve submission, one render per statement per
// streamed app — so it appends bytes directly instead of building
// intermediate strings (which dominated profiles of both lanes).
func appendStmt(b []byte, s ir.Stmt) []byte {
	switch st := s.(type) {
	case *ir.New:
		b = append(b, "new "...)
		b = append(b, st.Dst...)
		b = append(b, ' ')
		return append(b, st.Class...)
	case *ir.Const:
		b = append(b, "const "...)
		b = append(b, st.Dst...)
		switch st.Kind {
		case ir.ConstInt:
			b = append(b, " int "...)
			return strconv.AppendInt(b, st.Int, 10)
		case ir.ConstBool:
			b = append(b, " bool "...)
			return strconv.AppendBool(b, st.Bool)
		case ir.ConstNull:
			return append(b, " null"...)
		default:
			b = append(b, " str "...)
			return strconv.AppendQuote(b, st.Str)
		}
	case *ir.Move:
		b = append(b, "move "...)
		b = append(b, st.Dst...)
		b = append(b, ' ')
		return append(b, st.Src...)
	case *ir.Load:
		b = append(b, "load "...)
		b = append(b, st.Dst...)
		b = append(b, ' ')
		b = append(b, st.Obj...)
		b = append(b, ' ')
		return append(b, st.Field...)
	case *ir.Store:
		b = append(b, "store "...)
		b = append(b, st.Obj...)
		b = append(b, ' ')
		b = append(b, st.Field...)
		b = append(b, ' ')
		return append(b, st.Src...)
	case *ir.StaticLoad:
		b = append(b, "sload "...)
		b = append(b, st.Dst...)
		b = append(b, ' ')
		b = append(b, st.Class...)
		b = append(b, ' ')
		return append(b, st.Field...)
	case *ir.StaticStore:
		b = append(b, "sstore "...)
		b = append(b, st.Class...)
		b = append(b, ' ')
		b = append(b, st.Field...)
		b = append(b, ' ')
		return append(b, st.Src...)
	case *ir.BinOp:
		b = append(b, "binop "...)
		b = append(b, st.Dst...)
		b = append(b, ' ')
		b = append(b, st.Op.String()...)
		b = append(b, ' ')
		b = append(b, st.A...)
		b = append(b, ' ')
		return append(b, st.B...)
	case *ir.Invoke:
		b = append(b, "call "...)
		switch st.Kind {
		case ir.InvokeStatic:
			b = append(b, 's')
		case ir.InvokeSpecial:
			b = append(b, 'p')
		default:
			b = append(b, 'v')
		}
		b = append(b, ' ')
		b = appendOrUnderscore(b, st.Dst)
		b = append(b, ' ')
		b = appendOrUnderscore(b, st.Recv)
		b = append(b, ' ')
		b = append(b, st.Class...)
		b = append(b, ' ')
		b = append(b, st.Method...)
		for _, a := range st.Args {
			b = append(b, ' ')
			b = append(b, a...)
		}
		return b
	case *ir.If:
		b = append(b, "if "...)
		b = append(b, st.A...)
		b = append(b, ' ')
		b = append(b, st.Op.String()...)
		b = append(b, ' ')
		op := st.B
		switch {
		case op.IsVar:
			b = append(b, "var "...)
			return append(b, op.Var...)
		case op.Kind == ir.ConstInt:
			b = append(b, "int "...)
			return strconv.AppendInt(b, op.Int, 10)
		case op.Kind == ir.ConstBool:
			b = append(b, "bool "...)
			return strconv.AppendBool(b, op.Bool)
		default:
			return append(b, "null"...)
		}
	case *ir.Return:
		b = append(b, "ret "...)
		return appendOrUnderscore(b, st.Src)
	default:
		return append(b, "# unknown"...)
	}
}

// Read parses an app file, installs the framework, finalizes the
// program, and validates the result.
func Read(r io.Reader) (*apk.App, error) {
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	app := &apk.App{Program: p, Layouts: map[string]*apk.Layout{}}

	classes := map[string]*ir.Class{}
	viewsByLayout := map[string]map[int]*apk.View{}
	var curMethod *ir.Method
	var curBlock *ir.Block
	var curClassOfMethod string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("appfile: line %d: %s: %q", lineNo, msg, line)
		}
		if n, ok := minArity[f[0]]; ok && len(f) < n {
			return nil, fail("too few fields")
		}
		switch f[0] {
		case "app":
			if len(f) < 2 {
				return nil, fail("app needs a name")
			}
			app.Name = f[1]
		case "package":
			app.Manifest.Package = f[1]
		case "installs":
			app.Installs = strings.TrimPrefix(line, "installs ")
		case "activity":
			c := apk.Component{Class: f[1]}
			if len(f) >= 4 && f[2] == "layout" {
				c.Layout = f[3]
			}
			app.Manifest.Activities = append(app.Manifest.Activities, c)
		case "service":
			app.Manifest.Services = append(app.Manifest.Services, apk.Component{Class: f[1]})
		case "receiver":
			c := apk.Component{Class: f[1]}
			if len(f) >= 4 && f[2] == "filter" {
				c.IntentFilters = []string{f[3]}
			}
			app.Manifest.Receivers = append(app.Manifest.Receivers, c)
		case "layout":
			app.Layouts[f[1]] = &apk.Layout{Name: f[1]}
			viewsByLayout[f[1]] = map[int]*apk.View{}
		case "view":
			if len(f) != 5 {
				return nil, fail("view needs LAYOUT ID TYPE PARENT")
			}
			id, err1 := strconv.Atoi(f[2])
			parent, err2 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil {
				return nil, fail("bad view ids")
			}
			l, ok := app.Layouts[f[1]]
			if !ok {
				return nil, fail("view before layout")
			}
			v := &apk.View{ID: id, Type: f[3]}
			viewsByLayout[f[1]][id] = v
			if parent < 0 {
				l.Root = v
			} else {
				pv, ok := viewsByLayout[f[1]][parent]
				if !ok {
					return nil, fail("unknown parent view")
				}
				pv.Children = append(pv.Children, v)
			}
		case "xmlcb":
			if len(f) != 5 {
				return nil, fail("xmlcb needs LAYOUT ID KIND METHOD")
			}
			id, _ := strconv.Atoi(f[2])
			v, ok := viewsByLayout[f[1]][id]
			if !ok {
				return nil, fail("xmlcb before view")
			}
			if v.XMLCallbacks == nil {
				v.XMLCallbacks = map[string]string{}
			}
			v.XMLCallbacks[f[3]] = f[4]
		case "class":
			c, err := parseClassLine(f)
			if err != nil {
				return nil, fail(err.Error())
			}
			classes[c.Name] = c
			p.AddClass(c)
		case "field":
			c, ok := classes[f[1]]
			if !ok {
				return nil, fail("field before class")
			}
			c.Fields = append(c.Fields, f[2])
		case "method":
			c, ok := classes[f[1]]
			if !ok {
				return nil, fail("method before class")
			}
			m := &ir.Method{Name: f[2]}
			for i := 3; i < len(f); i++ {
				switch f[i] {
				case "static":
					m.Static = true
				case "params":
					i++
					if i < len(f) {
						m.Params = strings.Split(f[i], ",")
					}
				}
			}
			c.AddMethod(m)
			curMethod = m
			curClassOfMethod = c.Name
			curBlock = nil
		case "block":
			if curMethod == nil || f[1] != curClassOfMethod || f[2] != curMethod.Name {
				return nil, fail("block outside its method")
			}
			idx, err := strconv.Atoi(f[3])
			if err != nil || idx != len(curMethod.Blocks) {
				return nil, fail("blocks must be declared in order")
			}
			b := &ir.Block{Index: idx}
			for i := 4; i < len(f); i++ {
				if f[i] == "succ" && i+1 < len(f) {
					for _, s := range strings.Split(f[i+1], ",") {
						n, err := strconv.Atoi(s)
						if err != nil {
							return nil, fail("bad succ")
						}
						b.Succs = append(b.Succs, n)
					}
				}
			}
			curMethod.Blocks = append(curMethod.Blocks, b)
			curBlock = b
		default:
			if curBlock == nil {
				return nil, fail("statement outside a block")
			}
			st, err := parseStmt(f, line)
			if err != nil {
				return nil, fail(err.Error())
			}
			curBlock.Stmts = append(curBlock.Stmts, st)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	p.Finalize()
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// minArity is the minimum field count per directive and statement —
// checked up front so handlers can index positionally.
var minArity = map[string]int{
	"app": 2, "package": 2, "installs": 2,
	"activity": 2, "service": 2, "receiver": 2,
	"layout": 2, "view": 5, "xmlcb": 5,
	"class": 2, "field": 3, "method": 3, "block": 4,
	"new": 3, "const": 3, "move": 3, "load": 4, "store": 4,
	"sload": 4, "sstore": 4, "binop": 5, "call": 6, "if": 4, "ret": 2,
}

func parseClassLine(f []string) (*ir.Class, error) {
	if len(f) < 2 {
		return nil, fmt.Errorf("class needs a name")
	}
	c := ir.NewClass(f[1], frontend.Object)
	for i := 2; i < len(f); i++ {
		switch f[i] {
		case "extends":
			i++
			if i >= len(f) {
				return nil, fmt.Errorf("extends needs a class")
			}
			c.Super = f[i]
		case "implements":
			i++
			if i >= len(f) {
				return nil, fmt.Errorf("implements needs interfaces")
			}
			c.Interfaces = strings.Split(f[i], ",")
		case "library":
			c.Library = true
		}
	}
	return c, nil
}

func noneEmpty(v string) string {
	if v == "_" {
		return ""
	}
	return v
}

func parseStmt(f []string, line string) (ir.Stmt, error) {
	switch f[0] {
	case "new":
		if len(f) != 3 {
			return nil, fmt.Errorf("new DST CLASS")
		}
		return &ir.New{Dst: f[1], Class: f[2], Site: -1}, nil
	case "const":
		if len(f) < 3 {
			return nil, fmt.Errorf("const needs kind")
		}
		if f[2] != "null" && len(f) < 4 {
			return nil, fmt.Errorf("const %s needs a value", f[2])
		}
		switch f[2] {
		case "int":
			n, err := strconv.ParseInt(f[3], 10, 64)
			if err != nil {
				return nil, err
			}
			return &ir.Const{Dst: f[1], Kind: ir.ConstInt, Int: n}, nil
		case "bool":
			return &ir.Const{Dst: f[1], Kind: ir.ConstBool, Bool: f[3] == "true"}, nil
		case "null":
			return &ir.Const{Dst: f[1], Kind: ir.ConstNull}, nil
		case "str":
			s, err := strconv.Unquote(strings.TrimSpace(strings.SplitN(line, " str ", 2)[1]))
			if err != nil {
				return nil, err
			}
			return &ir.Const{Dst: f[1], Kind: ir.ConstString, Str: s}, nil
		}
		return nil, fmt.Errorf("bad const kind %q", f[2])
	case "move":
		return &ir.Move{Dst: f[1], Src: f[2]}, nil
	case "load":
		return &ir.Load{Dst: f[1], Obj: f[2], Field: f[3]}, nil
	case "store":
		return &ir.Store{Obj: f[1], Field: f[2], Src: f[3]}, nil
	case "sload":
		return &ir.StaticLoad{Dst: f[1], Class: f[2], Field: f[3]}, nil
	case "sstore":
		return &ir.StaticStore{Class: f[1], Field: f[2], Src: f[3]}, nil
	case "binop":
		op, err := parseBinOp(f[2])
		if err != nil {
			return nil, err
		}
		return &ir.BinOp{Dst: f[1], Op: op, A: f[3], B: f[4]}, nil
	case "call":
		if len(f) < 6 {
			return nil, fmt.Errorf("call KIND DST RECV CLASS METHOD [ARGS]")
		}
		var kind ir.InvokeKind
		switch f[1] {
		case "v":
			kind = ir.InvokeVirtual
		case "s":
			kind = ir.InvokeStatic
		case "p":
			kind = ir.InvokeSpecial
		default:
			return nil, fmt.Errorf("bad call kind %q", f[1])
		}
		return &ir.Invoke{
			Kind: kind, Dst: noneEmpty(f[2]), Recv: noneEmpty(f[3]),
			Class: f[4], Method: f[5], Args: append([]string(nil), f[6:]...),
		}, nil
	case "if":
		op, err := parseCmpOp(f[2])
		if err != nil {
			return nil, err
		}
		var b ir.Operand
		if f[3] != "null" && len(f) < 5 {
			return nil, fmt.Errorf("if operand %s needs a value", f[3])
		}
		switch f[3] {
		case "var":
			b = ir.VarOperand(f[4])
		case "int":
			n, err := strconv.ParseInt(f[4], 10, 64)
			if err != nil {
				return nil, err
			}
			b = ir.IntOperand(n)
		case "bool":
			b = ir.BoolOperand(f[4] == "true")
		case "null":
			b = ir.NullOperand()
		default:
			return nil, fmt.Errorf("bad if operand %q", f[3])
		}
		return &ir.If{A: f[1], Op: op, B: b}, nil
	case "ret":
		return &ir.Return{Src: noneEmpty(f[1])}, nil
	}
	return nil, fmt.Errorf("unknown statement %q", f[0])
}

func parseBinOp(s string) (ir.BinOpKind, error) {
	for _, op := range []ir.BinOpKind{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("bad binop %q", s)
}

func parseCmpOp(s string) (ir.CmpOp, error) {
	for _, op := range []ir.CmpOp{ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE} {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, fmt.Errorf("bad cmp op %q", s)
}
