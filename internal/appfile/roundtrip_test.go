package appfile

import (
	"bytes"
	"testing"

	"sierra/internal/core"
	"sierra/internal/corpus"
)

// TestRoundTripPreservesAnalysis is the batch cache's correctness
// anchor: the cache key is the digest of an app's canonical
// serialization, so Parse(Dump(app)) must be analysis-equivalent to the
// original — otherwise two "identical" apps could cache-share a wrong
// result. Analysis mutates the program (harness generation), so both
// sides get a fresh instance.
func TestRoundTripPreservesAnalysis(t *testing.T) {
	row, ok := corpus.RowByName("SuperGenPass")
	if !ok {
		t.Fatal("SuperGenPass missing from corpus")
	}

	orig, _ := corpus.NamedApp(row)
	raw, err := Bytes(orig)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	// Serialization fixpoint: dumping the parsed app reproduces the
	// original bytes, so the digest is stable across round trips.
	raw2, err := Bytes(parsed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("Dump(Parse(Dump(app))) differs from Dump(app)")
	}

	fresh, _ := corpus.NamedApp(row)
	got := core.Analyze(parsed, core.Options{})
	want := core.Analyze(fresh, core.Options{})

	type key struct{ harness, actions, hb, racy, races int }
	g := key{got.NumHarnesses(), got.NumActions(), got.HBEdges(), len(got.RacyPairs), got.TrueRaces()}
	w := key{want.NumHarnesses(), want.NumActions(), want.HBEdges(), len(want.RacyPairs), want.TrueRaces()}
	if g != w {
		t.Fatalf("round-tripped app analyzes differently:\n got %+v\nwant %+v", g, w)
	}
}
