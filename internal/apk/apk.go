// Package apk models the analyzable contents of an Android application
// package: the manifest (declared components), inflatable layouts (view
// trees with ids and XML-registered callbacks), and the app's IR program.
//
// It substitutes for the APK container + manifest + layout XML that the
// paper's toolchain parses out of real packages.
package apk

import (
	"fmt"
	"sort"

	"sierra/internal/ir"
)

// App bundles everything SIERRA needs about one application.
type App struct {
	// Name identifies the app in reports and tables.
	Name string
	// Program holds the app classes plus the installed framework model.
	// It must be finalized before analysis.
	Program *ir.Program
	// Manifest declares the app's components.
	Manifest Manifest
	// Layouts maps layout name → view tree. Activities reference layouts
	// by name via SetContentView in their metadata (see Manifest).
	Layouts map[string]*Layout
	// Installs is the Google-Play install bracket (Table 2 metadata);
	// empty when unknown.
	Installs string
}

// Manifest lists the declared components, mirroring AndroidManifest.xml.
type Manifest struct {
	Package string
	// Activities in declaration order; the first is the launcher unless
	// MainActivity overrides it.
	Activities []Component
	Services   []Component
	Receivers  []Component
	// MainActivity names the launcher activity class ("" = first).
	MainActivity string
}

// Component is one manifest entry.
type Component struct {
	Class string
	// Layout names the layout this activity inflates ("" = none).
	Layout string
	// IntentFilters lists declared actions (receivers/services).
	IntentFilters []string
}

// Layout is an inflatable view tree.
type Layout struct {
	Name string
	Root *View
}

// View is a node in a layout: a typed widget with a resource id and any
// callbacks registered directly in the XML (android:onClick="...").
type View struct {
	ID   int
	Type string
	// XMLCallbacks maps callback method kind (e.g. "onClick") to the
	// activity method name the XML names.
	XMLCallbacks map[string]string
	Children     []*View
}

// Launcher returns the launcher activity component, or nil when the app
// declares no activities.
func (a *App) Launcher() *Component {
	if len(a.Manifest.Activities) == 0 {
		return nil
	}
	if a.Manifest.MainActivity != "" {
		for i := range a.Manifest.Activities {
			if a.Manifest.Activities[i].Class == a.Manifest.MainActivity {
				return &a.Manifest.Activities[i]
			}
		}
	}
	return &a.Manifest.Activities[0]
}

// ActivityComponent returns the manifest entry for the given class.
func (a *App) ActivityComponent(cls string) *Component {
	for i := range a.Manifest.Activities {
		if a.Manifest.Activities[i].Class == cls {
			return &a.Manifest.Activities[i]
		}
	}
	return nil
}

// FindView resolves a view id within the layout an activity inflates —
// the static model of findViewById. Returns nil when the id is unknown.
func (a *App) FindView(layout string, id int) *View {
	l := a.Layouts[layout]
	if l == nil {
		return nil
	}
	return l.Root.find(id)
}

func (v *View) find(id int) *View {
	if v == nil {
		return nil
	}
	if v.ID == id {
		return v
	}
	for _, c := range v.Children {
		if hit := c.find(id); hit != nil {
			return hit
		}
	}
	return nil
}

// AllViews returns the flattened view tree in pre-order.
func (l *Layout) AllViews() []*View {
	var out []*View
	var walk func(*View)
	walk = func(v *View) {
		if v == nil {
			return
		}
		out = append(out, v)
		for _, c := range v.Children {
			walk(c)
		}
	}
	walk(l.Root)
	return out
}

// ViewIDs returns a map id → view across all layouts; duplicate ids in
// different layouts are the same logical view per the paper's
// InflatedViewContext ("two inflated view objects are considered aliased
// when they have the same ids").
func (a *App) ViewIDs() map[int]*View {
	ids := make(map[int]*View)
	names := make([]string, 0, len(a.Layouts))
	for n := range a.Layouts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, v := range a.Layouts[n].AllViews() {
			if _, dup := ids[v.ID]; !dup {
				ids[v.ID] = v
			}
		}
	}
	return ids
}

// BytecodeSize estimates the app's .dex size in bytes. Real Dalvik
// encodes roughly 20–40 bytes per instruction plus constant-pool
// overhead; the constant here only needs to rank apps the way Table 2
// does, not match dex byte-for-byte.
func (a *App) BytecodeSize() int {
	const bytesPerStmt = 28
	const classOverhead = 220
	total := 0
	for _, c := range a.Program.Classes() {
		if c.Framework {
			continue
		}
		total += classOverhead
		for _, m := range c.MethodsSorted() {
			total += 40 + bytesPerStmt*m.NumStmts()
		}
	}
	return total
}

// Validate checks internal consistency: manifest classes exist and are of
// the right framework kind, layouts referenced by activities exist, and
// XML callbacks name real methods. The corpus generator and hand-built
// examples both run through it.
func (a *App) Validate() error {
	p := a.Program
	if p == nil {
		return fmt.Errorf("apk %s: nil program", a.Name)
	}
	if err := p.Validate(); err != nil {
		return fmt.Errorf("apk %s: %w", a.Name, err)
	}
	check := func(comp Component, super, what string) error {
		c := p.Class(comp.Class)
		if c == nil {
			return fmt.Errorf("apk %s: %s %s not in program", a.Name, what, comp.Class)
		}
		if !p.IsSubtype(comp.Class, super) {
			return fmt.Errorf("apk %s: %s %s does not extend %s", a.Name, what, comp.Class, super)
		}
		return nil
	}
	for _, act := range a.Manifest.Activities {
		if err := check(act, "android.app.Activity", "activity"); err != nil {
			return err
		}
		if act.Layout != "" {
			if _, ok := a.Layouts[act.Layout]; !ok {
				return fmt.Errorf("apk %s: activity %s references unknown layout %q", a.Name, act.Class, act.Layout)
			}
		}
		for _, l := range a.Layouts {
			for _, v := range l.AllViews() {
				for _, target := range v.XMLCallbacks {
					found := false
					for _, comp := range a.Manifest.Activities {
						if p.ResolveMethod(comp.Class, target) != nil {
							found = true
							break
						}
					}
					if !found {
						return fmt.Errorf("apk %s: XML callback %q matches no activity method", a.Name, target)
					}
				}
			}
		}
	}
	for _, svc := range a.Manifest.Services {
		if err := check(svc, "android.app.Service", "service"); err != nil {
			return err
		}
	}
	for _, rcv := range a.Manifest.Receivers {
		if err := check(rcv, "android.content.BroadcastReceiver", "receiver"); err != nil {
			return err
		}
	}
	return nil
}
