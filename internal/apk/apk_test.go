package apk_test

import (
	"testing"

	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

func TestHandmadeAppsValidate(t *testing.T) {
	for _, app := range []*apk.App{corpus.NewsApp(), corpus.DatabaseApp(), corpus.SudokuTimerApp()} {
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if !app.Program.Finalized() {
			t.Errorf("%s: program not finalized", app.Name)
		}
	}
}

func TestLauncherSelection(t *testing.T) {
	app := corpus.NewsApp()
	if l := app.Launcher(); l == nil || l.Class != "NewsActivity" {
		t.Fatalf("Launcher = %v", l)
	}
	app.Manifest.Activities = append(app.Manifest.Activities, apk.Component{Class: "NewsActivity2"})
	app.Manifest.MainActivity = "NewsActivity2"
	if l := app.Launcher(); l.Class != "NewsActivity2" {
		t.Fatalf("MainActivity override ignored: %v", l)
	}
	empty := &apk.App{}
	if empty.Launcher() != nil {
		t.Fatal("empty app should have no launcher")
	}
}

func TestFindViewAndViewIDs(t *testing.T) {
	app := corpus.NewsApp()
	v := app.FindView("main", 101)
	if v == nil || v.Type != frontend.RecycleViewClass {
		t.Fatalf("FindView(101) = %v", v)
	}
	if app.FindView("main", 999) != nil {
		t.Fatal("unknown id should be nil")
	}
	if app.FindView("nope", 101) != nil {
		t.Fatal("unknown layout should be nil")
	}
	ids := app.ViewIDs()
	for _, id := range []int{100, 101, 102} {
		if ids[id] == nil {
			t.Errorf("ViewIDs missing %d", id)
		}
	}
}

func TestAllViewsPreOrder(t *testing.T) {
	app := corpus.NewsApp()
	vs := app.Layouts["main"].AllViews()
	if len(vs) != 3 || vs[0].ID != 100 {
		t.Fatalf("AllViews = %v", vs)
	}
}

func TestBytecodeSizeScalesWithCode(t *testing.T) {
	news := corpus.NewsApp()
	small := corpus.SudokuTimerApp()
	if news.BytecodeSize() <= 0 {
		t.Fatal("size must be positive")
	}
	// The news app has more app classes/statements than the timer app.
	if news.BytecodeSize() <= small.BytecodeSize()/2 {
		t.Errorf("sizes: news %d vs sudoku %d", news.BytecodeSize(), small.BytecodeSize())
	}
	// Framework code must not count: same app without app classes ~ 0.
	p := ir.NewProgram()
	frontend.InstallFramework(p)
	empty := &apk.App{Name: "empty", Program: p}
	if empty.BytecodeSize() != 0 {
		t.Errorf("framework-only size = %d, want 0", empty.BytecodeSize())
	}
}

func TestValidateCatchesBrokenApps(t *testing.T) {
	app := corpus.NewsApp()
	app.Manifest.Activities[0].Class = "Missing"
	if err := app.Validate(); err == nil {
		t.Error("missing activity class not caught")
	}

	app = corpus.NewsApp()
	app.Manifest.Activities[0].Layout = "nope"
	if err := app.Validate(); err == nil {
		t.Error("unknown layout not caught")
	}

	app = corpus.NewsApp()
	app.Manifest.Receivers = []apk.Component{{Class: "NewsActivity"}}
	if err := app.Validate(); err == nil {
		t.Error("non-receiver class in receivers not caught")
	}

	app = corpus.NewsApp()
	app.Layouts["main"].Root.Children[1].XMLCallbacks = map[string]string{"onClick": "noSuchMethod"}
	if err := app.Validate(); err == nil {
		t.Error("dangling XML callback not caught")
	}
}

func TestActivityComponentLookup(t *testing.T) {
	app := corpus.DatabaseApp()
	if c := app.ActivityComponent("MainActivity"); c == nil {
		t.Fatal("MainActivity not found")
	}
	if c := app.ActivityComponent("Nope"); c != nil {
		t.Fatal("bogus component found")
	}
}
