package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
	"sierra/internal/obs/export"
	"sierra/internal/pointer"
	"sierra/internal/shbg"
	"sierra/internal/stream"
	"sierra/internal/symexec"
)

// batchConfig carries the flag values that shape a -batch or -stream
// run. Exactly one of glob / streamCfg is set; everything else is
// shared, which is what keeps the two modes' outputs comparable.
type batchConfig struct {
	glob       string
	streamCfg  string // scenario config path (-stream)
	genJobs    int    // generation workers (-stream)
	jobs       int
	timeout    time.Duration
	cacheDir   string
	policy     pointer.Policy
	policyID   string
	solver     pointer.Solver
	compare    bool
	noRefute   bool
	maxPaths   int
	maxDepth   int
	refuteJobs int
	ptaJobs    int
	shbgJobs   int
	stats      string
	events     string
	debugAddr  string
	verdicts   string // TSV verdict artifact path
}

// appSummary is the cached per-file verdict: the headline numbers a
// corpus sweep wants, small enough to serialize per job. One schema
// with the streaming pipeline (stream.Summary) so -batch and -stream
// results are byte-comparable.
type appSummary = stream.Summary

// runBatch analyzes a corpus on the batch engine and prints one summary
// line per app in deterministic order. With cfg.glob the corpus is the
// matched .app files (materialized mode); with cfg.streamCfg it is
// generated on the fly from a scenario config and never touches disk
// (fused streaming mode). The exit code is 0 when every app produced a
// verdict (including cached and partial/timeout verdicts) and 1 when
// any job failed or panicked, or generation broke.
func runBatch(cfg batchConfig) int {
	// Flight recorder: the ring exists whenever anyone can look at it
	// (-events mirrors it to a JSONL file, -debug-addr serves its tail).
	var rec *eventlog.Recorder
	if cfg.events != "" || cfg.debugAddr != "" {
		var sink io.Writer
		if cfg.events != "" {
			f, err := os.Create(cfg.events)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sierra: -events:", err)
				return 1
			}
			defer f.Close()
			sink = f
		}
		rec = eventlog.New(sink, eventlog.DefaultRingCap)
	}
	defer rec.DumpOnPanic(os.Stderr)

	// Per-job pipeline observability (stage counters, histograms) is
	// absorbed into the shared trace only when someone consumes it; a
	// plain batch run keeps the jobs' zero-cost nil-trace path.
	liveObs := cfg.stats != "" || cfg.debugAddr != ""
	tr := obs.New("sierra:batch")
	var absorb *obs.Trace
	if liveObs {
		absorb = tr
	}

	fingerprint := []string{
		"report",
		"policy=" + cfg.policyID,
		"solver=" + string(cfg.solver),
		fmt.Sprintf("compare=%t", cfg.compare),
		fmt.Sprintf("refute=%t", !cfg.noRefute),
		fmt.Sprintf("maxpaths=%d", cfg.maxPaths),
		fmt.Sprintf("maxdepth=%d", cfg.maxDepth),
		fmt.Sprintf("refutejobs=%d", cfg.refuteJobs),
		fmt.Sprintf("ptajobs=%d", cfg.ptaJobs),
		fmt.Sprintf("shbgjobs=%d", cfg.shbgJobs),
	}
	analyze := stream.Analyzer(core.Options{
		Policy:          cfg.policy,
		CompareContexts: cfg.compare,
		SkipRefutation:  cfg.noRefute,
		Refuter:         symexec.Config{MaxPaths: cfg.maxPaths, MaxDepth: cfg.maxDepth, Jobs: cfg.refuteJobs},
		SHBG:            shbg.Options{Jobs: cfg.shbgJobs},
		PTASolver:       cfg.solver,
		PTAJobs:         cfg.ptaJobs,
	}, absorb)

	// Build the job source: a sorted glob of file-backed jobs, or the
	// fused generate→analyze stream.
	var src batch.Source
	total := -1
	runFields := map[string]any{
		"jobs":        cfg.jobs,
		"job_timeout": cfg.timeout.String(),
		"policy":      cfg.policyID,
		"solver":      string(cfg.solver),
		"compare":     cfg.compare,
		"refute":      !cfg.noRefute,
		"max_paths":   cfg.maxPaths,
		"max_depth":   cfg.maxDepth,
		"refute_jobs": cfg.refuteJobs,
		"pta_jobs":    cfg.ptaJobs,
		"shbg_jobs":   cfg.shbgJobs,
		"cache":       cfg.cacheDir != "",
	}
	var streamSrc *stream.Source
	if cfg.streamCfg != "" {
		scfg, err := stream.LoadConfig(cfg.streamCfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra: -stream:", err)
			return 1
		}
		streamSrc = stream.NewSource(scfg, analyze, stream.SourceOptions{
			GenJobs:     cfg.genJobs,
			Fingerprint: fingerprint,
			Obs:         tr,
		})
		src = streamSrc
		runFields["config"] = cfg.streamCfg
		runFields["corpus"] = scfg.Name
		runFields["mix"] = scfg.MixSummary()
		runFields["gen_jobs"] = cfg.genJobs
		runFields["apps_cap"] = scfg.Apps
		runFields["tot_size"] = scfg.TotSize
	} else {
		files, err := filepath.Glob(cfg.glob)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra: -batch:", err)
			return 1
		}
		if len(files) == 0 {
			fmt.Fprintf(os.Stderr, "sierra: -batch %q matched no files\n", cfg.glob)
			return 1
		}
		sort.Strings(files)
		total = len(files)
		jobs := make([]batch.Job, len(files))
		for i := range files {
			path := files[i]
			jobs[i] = batch.Job{
				Name: path,
				KeyFn: func() (string, error) {
					raw, err := os.ReadFile(path)
					if err != nil {
						return "", err
					}
					return batch.Key(batch.RawDigest(raw), fingerprint...), nil
				},
				Fn: func(jctx context.Context) ([]byte, error) {
					raw, err := os.ReadFile(path)
					if err != nil {
						return nil, err
					}
					return analyze(jctx, path, raw)
				},
			}
		}
		src = batch.SliceSource(jobs)
		runFields["glob"] = cfg.glob
		runFields["files"] = len(files)
	}

	// The run is cancellable so the signal handler can wind it down as a
	// graceful cancellation after dumping the flight-recorder tail.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if rec != nil {
		stop := rec.NotifySignals(os.Stderr, cancel)
		defer stop()
	}

	tk := &batch.Tracker{}
	if cfg.debugAddr != "" {
		srv, err := export.Serve(cfg.debugAddr, export.Options{
			Trace:    tr,
			Events:   rec,
			Progress: func() any { return tk.Snapshot() },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra: -debug-addr:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sierra: debug server on http://%s\n", srv.Addr())
	}

	rec.Emit(eventlog.Event{Type: "run_start", Fields: runFields})

	var verdictResults []batch.Result
	opts := batch.Options{
		Workers: cfg.jobs,
		Timeout: cfg.timeout,
		Obs:     tr,
		Events:  rec,
		Tracker: tk,
		OnResult: func(i int, r batch.Result) {
			printBatchLine(i, total, r)
			emitVerdict(rec, i, r)
		},
	}
	if cfg.cacheDir != "" {
		c, err := batch.NewDirCache(cfg.cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra: -cache-dir:", err)
			return 1
		}
		opts.Cache = c
	}

	start := time.Now()
	results, srcErr := batch.RunSource(ctx, src, opts)
	if streamSrc != nil {
		streamSrc.Stop()
	}
	verdictResults = results
	sum := batch.Summarize(results, time.Since(start))
	fmt.Println(sum.String())
	if srcErr != nil {
		fmt.Fprintln(os.Stderr, "sierra: stream source:", srcErr)
	}

	rec.Emit(eventlog.Event{Type: "run_end", Fields: map[string]any{
		"jobs":         sum.Jobs,
		"ok":           sum.OK,
		"cached":       sum.Cached,
		"failed":       sum.Failed,
		"panics":       sum.Panics,
		"timeouts":     sum.Timeouts,
		"canceled":     sum.Canceled,
		"wall_seconds": sum.WallSecs,
	}})
	if err := rec.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "sierra: flushing -events:", err)
		return 1
	}

	if cfg.verdicts != "" {
		if err := os.WriteFile(cfg.verdicts, stream.VerdictTable(verdictResults), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sierra: writing -verdicts:", err)
			return 1
		}
	}

	if cfg.stats != "" {
		raw, err := tr.Snapshot().JSON()
		if err == nil {
			err = os.WriteFile(cfg.stats, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra: writing -stats:", err)
			return 1
		}
	}

	if sum.Failed > 0 || sum.Panics > 0 || srcErr != nil {
		return 1
	}
	return 0
}

// emitVerdict mirrors one finished job's headline numbers into the
// flight-recorder stream as a job_verdict event: replaying the JSONL
// reconstructs the per-app verdict tallies without the batch output.
func emitVerdict(rec *eventlog.Recorder, i int, r batch.Result) {
	if rec == nil {
		return
	}
	e := eventlog.Event{Type: "job_verdict", Job: r.Name, Index: i, Status: string(r.Status)}
	var s appSummary
	if len(r.Value) > 0 && json.Unmarshal(r.Value, &s) == nil {
		e.Fields = map[string]any{
			"app":         s.App,
			"harnesses":   s.Harnesses,
			"actions":     s.Actions,
			"hb_edges":    s.HBEdges,
			"racy_pairs":  s.RacyPairs,
			"races":       s.Races,
			"interrupted": s.Interrupted,
		}
		e.DurMS = s.TotalSeconds * 1e3
	}
	rec.Emit(e)
}

// printBatchLine renders one result. Lines arrive in input order (the
// engine's determinism guarantee), so the output reads like a
// sequential run regardless of -jobs. A streamed run's total is
// unknown while the source produces; total <= 0 renders as "?".
func printBatchLine(i, total int, r batch.Result) {
	den := "?"
	if total > 0 {
		den = fmt.Sprint(total)
	}
	switch r.Status {
	case batch.StatusOK, batch.StatusCached, batch.StatusTimeout:
		var s appSummary
		if err := json.Unmarshal(r.Value, &s); err != nil {
			fmt.Printf("[%3d/%s] %-40s %-8s (unreadable summary)\n", i+1, den, r.Name, r.Status)
			return
		}
		note := ""
		if s.Interrupted {
			note = " partial"
		}
		fmt.Printf("[%3d/%s] %-40s %-8s harnesses=%d actions=%d hb=%d racy=%d races=%d %.3fs%s\n",
			i+1, den, r.Name, r.Status, s.Harnesses, s.Actions, s.HBEdges,
			s.RacyPairs, s.Races, s.TotalSeconds, note)
	case batch.StatusPanic:
		first := r.Panic
		if nl := bytes.IndexByte([]byte(first), '\n'); nl >= 0 {
			first = first[:nl]
		}
		fmt.Printf("[%3d/%s] %-40s %-8s %s\n", i+1, den, r.Name, r.Status, first)
	default:
		fmt.Printf("[%3d/%s] %-40s %-8s %s\n", i+1, den, r.Name, r.Status, r.Err)
	}
}
