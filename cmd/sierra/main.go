// Command sierra runs the static event-race analysis on one app and
// prints a ranked race report — the tool interface described in the
// paper's §3.1 (Fig 3).
//
// Usage:
//
//	sierra -app OpenSudoku            # a named 20-app-dataset member
//	sierra -fdroid 17                 # a generated 174-app-dataset member
//	sierra -file path/to/app.app      # a textual app model
//	sierra -batch 'models/*.app'      # a whole corpus, concurrently
//	sierra -stream corpus.cfg         # generate + analyze fused, no disk corpus
//	sierra -app K-9Mail -policy hybrid -compare -v
//	sierra -app OpenSudoku -stats out.json      # machine-readable effort snapshot
//	sierra -app OpenSudoku -pprof-cpu cpu.out   # CPU profile of the run
//	sierra -batch 'models/*.app' -events run.jsonl -debug-addr :6060
//
// Batch mode fans the matched .app files out across -jobs workers with
// per-file deadlines (-job-timeout), panic isolation, and an optional
// digest-keyed result cache (-cache-dir); one summary line per file is
// printed in glob order regardless of completion order.
//
// Stream mode (-stream) reads a scenario config (see cmd/corpusgen
// -list-scenarios and README.md "Generating corpora at scale"), fuses
// -gen-jobs generation workers into the same batch engine through a
// bounded prefetch queue, and produces verdicts byte-identical to
// materializing the corpus and running -batch over it — with peak
// memory bounded by the queue depth times the largest app, not by the
// corpus size.
//
// Live telemetry (see README.md "Live telemetry"): -events streams
// sierra-events/1 JSONL flight-recorder events (run config, per-job
// start/end, verdicts) and -debug-addr serves /metrics, /progress,
// /events, /healthz, and /debug/pprof while the run executes. On
// SIGINT/SIGTERM or a panic the last events in the in-memory ring are
// dumped to stderr before the process winds down.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
	"sierra/internal/obs/export"
	"sierra/internal/pointer"
	"sierra/internal/report"
	"sierra/internal/serve"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
	"sierra/internal/verify"
)

func main() {
	// Subcommands dispatch before flag parsing; everything else is the
	// classic one-shot CLI.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(runServe(os.Args[2:]))
	}

	var (
		appName        = flag.String("app", "", "named dataset app (see -list)")
		fdroid         = flag.Int("fdroid", -1, "generated dataset app index (0..173)")
		file           = flag.String("file", "", "textual .app file to analyze")
		batchGlob      = flag.String("batch", "", "analyze every .app file matching this glob on a worker pool")
		streamCfg      = flag.String("stream", "", "generate a corpus from this scenario config and analyze it on the fly, never touching disk")
		genJobs        = flag.Int("gen-jobs", 0, "generation worker count in -stream mode (0 = GOMAXPROCS; the admitted stream is identical at any count)")
		verdicts       = flag.String("verdicts", "", "write the deterministic TSV verdict table of a -batch/-stream run to this file")
		jobs           = flag.Int("jobs", 0, "batch worker count (0 = GOMAXPROCS)")
		jobTimeout     = flag.Duration("job-timeout", 0, "per-file analysis deadline in batch mode (0 = none)")
		cacheDir       = flag.String("cache-dir", "", "cache batch results in this directory, keyed by file digest + options")
		policy         = flag.String("policy", "as", "context policy: as | hybrid | 2obj | 2cfa | insensitive")
		ptaSolver      = flag.String("pta-solver", "delta", "points-to fixpoint solver: delta | exhaustive (identical results; delta is faster)")
		compare        = flag.Bool("compare", false, "also report racy pairs without action sensitivity")
		noRefute       = flag.Bool("no-refute", false, "skip symbolic refutation")
		refuteMaxPaths = flag.Int("refute-max-paths", 5000, "refutation path budget per query (the paper's 5,000)")
		refuteMaxDepth = flag.Int("refute-max-depth", 6, "refutation call-inlining depth bound (the paper's 6)")
		refuteJobs     = flag.Int("refute-jobs", 0, "per-pair refutation workers within one app (0 = GOMAXPROCS, 1 = sequential shared-memo refuter; verdicts are identical at any count)")
		ptaJobs        = flag.Int("pta-jobs", 0, "SCC-partitioned points-to solver workers (0 = GOMAXPROCS, 1 = sequential fixpoint; results are identical at any count)")
		shbgJobs       = flag.Int("shbg-jobs", 0, "block-parallel SHBG closure workers (0 = GOMAXPROCS, 1 = sequential closure; the graph is identical at any count)")
		list           = flag.Bool("list", false, "list named dataset apps and exit")
		verbose        = flag.Bool("v", false, "print every report plus the observability breakdown")
		verifyN        = flag.Int("verify", 0, "dynamically confirm the top N reports via schedule search (§6.4)")
		stats          = flag.String("stats", "", "write the observability snapshot (spans + counters) as JSON to this file")
		events         = flag.String("events", "", "stream sierra-events/1 flight-recorder events as JSONL to this file")
		debugAddr      = flag.String("debug-addr", "", "serve /metrics, /progress, /events, /healthz, and /debug/pprof on this address while the run executes")
		pprofCPU       = flag.String("pprof-cpu", "", "write a CPU profile of the analysis to this file")
		pprofMem       = flag.String("pprof-mem", "", "write a heap profile after the analysis to this file")
		reportJSON     = flag.String("report-json", "", "write the canonical sierra-report/1 document to this file ('-' = stdout); byte-identical to what `sierra serve` stores for the same bytes and config")
	)
	flag.Parse()

	if *list {
		for _, n := range corpus.Names() {
			fmt.Println(n)
		}
		return
	}

	// Input selectors are mutually exclusive; silently preferring one
	// over another hides typos, so conflicts are an error up front.
	var given []string
	if *appName != "" {
		given = append(given, "-app")
	}
	if *fdroid >= 0 {
		given = append(given, "-fdroid")
	}
	if *file != "" {
		given = append(given, "-file")
	}
	if *batchGlob != "" {
		given = append(given, "-batch")
	}
	if *streamCfg != "" {
		given = append(given, "-stream")
	}
	if len(given) > 1 {
		fmt.Fprintf(os.Stderr, "sierra: %s are mutually exclusive; pick exactly one input selector\n",
			strings.Join(given, " and "))
		os.Exit(2)
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sierra:", err)
		os.Exit(1)
	}
	solver, err := pointer.ParseSolver(*ptaSolver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sierra: -pta-solver:", err)
		os.Exit(1)
	}

	// Worker counts default to the machine (0 = GOMAXPROCS). Every
	// parallel kernel is bit-for-bit deterministic, so the counts affect
	// only wall clock, never results.
	*refuteJobs = resolveJobs(*refuteJobs)
	*ptaJobs = resolveJobs(*ptaJobs)
	*shbgJobs = resolveJobs(*shbgJobs)

	if *batchGlob != "" || *streamCfg != "" {
		code := runBatch(batchConfig{
			glob:       *batchGlob,
			streamCfg:  *streamCfg,
			genJobs:    resolveJobs(*genJobs),
			jobs:       *jobs,
			timeout:    *jobTimeout,
			cacheDir:   *cacheDir,
			policy:     pol,
			policyID:   *policy,
			solver:     solver,
			compare:    *compare,
			noRefute:   *noRefute,
			maxPaths:   *refuteMaxPaths,
			maxDepth:   *refuteMaxDepth,
			refuteJobs: *refuteJobs,
			ptaJobs:    *ptaJobs,
			shbgJobs:   *shbgJobs,
			stats:      *stats,
			events:     *events,
			debugAddr:  *debugAddr,
			verdicts:   *verdicts,
		})
		os.Exit(code)
	}

	app, err := loadApp(*appName, *fdroid, *file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sierra:", err)
		os.Exit(1)
	}

	// The report digest keys the canonical document exactly as `sierra
	// serve` would key this submission: the raw file bytes for -file,
	// the canonical rendering otherwise. Computed up front — harness
	// generation extends the program during analysis.
	var reportDigest string
	if *reportJSON != "" {
		raw, err := os.ReadFile(*file)
		if *file == "" {
			raw, err = appfile.Bytes(app)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra: -report-json:", err)
			os.Exit(1)
		}
		reportDigest = batch.RawDigest(raw)
	}

	if *pprofCPU != "" {
		f, err := os.Create(*pprofCPU)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sierra:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// Observability is on whenever someone will look at it (-stats, -v,
	// or a live -debug-addr scrape); otherwise the pipeline runs with a
	// nil trace at zero cost.
	var tr *obs.Trace
	if *stats != "" || *verbose || *debugAddr != "" {
		tr = obs.New("sierra:" + app.Name)
	}

	// Flight recorder: the ring exists whenever anyone can look at it
	// (-events mirrors it to a JSONL file, -debug-addr serves its tail);
	// on SIGINT/SIGTERM or a panic its tail is dumped to stderr.
	var rec *eventlog.Recorder
	if *events != "" || *debugAddr != "" {
		var sink io.Writer
		if *events != "" {
			f, err := os.Create(*events)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sierra: -events:", err)
				os.Exit(1)
			}
			defer f.Close()
			sink = f
		}
		rec = eventlog.New(sink, eventlog.DefaultRingCap)
	}
	defer rec.DumpOnPanic(os.Stderr)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if rec != nil {
		stop := rec.NotifySignals(os.Stderr, cancel)
		defer stop()
	}
	if *debugAddr != "" {
		srv, err := export.Serve(*debugAddr, export.Options{Trace: tr, Events: rec})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra: -debug-addr:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sierra: debug server on http://%s\n", srv.Addr())
	}

	rec.Emit(eventlog.Event{Type: "run_start", Job: app.Name, Fields: map[string]any{
		"policy":      *policy,
		"solver":      string(solver),
		"compare":     *compare,
		"refute":      !*noRefute,
		"max_paths":   *refuteMaxPaths,
		"max_depth":   *refuteMaxDepth,
		"refute_jobs": *refuteJobs,
		"pta_jobs":    *ptaJobs,
		"shbg_jobs":   *shbgJobs,
	}})

	res := core.AnalyzeContext(ctx, app, core.Options{
		Policy:          pol,
		CompareContexts: *compare,
		SkipRefutation:  *noRefute,
		Refuter:         symexec.Config{MaxPaths: *refuteMaxPaths, MaxDepth: *refuteMaxDepth, Jobs: *refuteJobs},
		SHBG:            shbg.Options{Jobs: *shbgJobs},
		PTASolver:       solver,
		PTAJobs:         *ptaJobs,
		Obs:             tr,
	})

	if rec != nil {
		for _, st := range []struct {
			name string
			d    time.Duration
		}{
			{"cg_pa", res.Timing.CGPA},
			{"hbg", res.Timing.HBG},
			{"pairs", res.Timing.Pairs},
			{"compare", res.Timing.Compare},
			{"refutation", res.Timing.Refutation},
		} {
			rec.Emit(eventlog.Event{Type: "stage", Job: app.Name,
				DurMS:  float64(st.d) / 1e6,
				Fields: map[string]any{"stage": st.name}})
		}
		rec.Emit(eventlog.Event{Type: "run_end", Job: app.Name,
			DurMS: float64(res.Timing.Total) / 1e6,
			Fields: map[string]any{
				"harnesses":   res.NumHarnesses(),
				"actions":     res.NumActions(),
				"hb_edges":    res.HBEdges(),
				"racy_pairs":  len(res.RacyPairs),
				"races":       res.TrueRaces(),
				"interrupted": res.Interrupted,
			}})
		if err := rec.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "sierra: flushing -events:", err)
			os.Exit(1)
		}
	}

	if *reportJSON != "" {
		if res.Interrupted {
			fmt.Fprintf(os.Stderr, "sierra: -report-json: analysis interrupted at %q; no report written\n", res.InterruptedStage)
			os.Exit(1)
		}
		doc := serve.RenderReport(reportDigest, res)
		if *reportJSON == "-" {
			os.Stdout.Write(doc)
		} else if err := os.WriteFile(*reportJSON, doc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "sierra: -report-json:", err)
			os.Exit(1)
		}
	}

	if *stats != "" {
		raw, err := tr.Snapshot().JSON()
		if err == nil {
			err = os.WriteFile(*stats, raw, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra: writing -stats:", err)
			os.Exit(1)
		}
	}
	if *pprofMem != "" {
		f, err := os.Create(*pprofMem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra:", err)
			os.Exit(1)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sierra:", err)
			os.Exit(1)
		}
		f.Close()
	}

	// With the canonical document on stdout, the human summary would
	// corrupt it; stdout carries exactly the report bytes.
	if *reportJSON == "-" {
		return
	}

	fmt.Printf("app            %s\n", app.Name)
	fmt.Printf("policy         %s\n", pol.Name())
	fmt.Printf("harnesses      %d\n", res.NumHarnesses())
	fmt.Printf("actions        %d\n", res.NumActions())
	fmt.Printf("HB edges       %d (%.1f%% of max)\n", res.HBEdges(), res.OrderedPercent())
	if *compare {
		fmt.Printf("racy pairs     %d (without action sensitivity: %d)\n",
			len(res.RacyPairs), res.RacyPairsNoAS)
	} else {
		fmt.Printf("racy pairs     %d\n", len(res.RacyPairs))
	}
	if !*noRefute {
		fmt.Printf("races          %d (after refutation)\n", res.TrueRaces())
		s := report.Summarize(res.Reports)
		fmt.Printf("categories     app=%d framework=%d library=%d; ref-races=%d; benign-guard=%.1f%%\n",
			s.App, s.Framework, s.Library, s.RefRaces, s.BenignPct)
	}
	fmt.Printf("time           total %.3fs (CG+PA %.3fs, HBG %.3fs, pairs %.3fs, compare %.3fs, refutation %.3fs)\n",
		res.Timing.Total.Seconds(), res.Timing.CGPA.Seconds(),
		res.Timing.HBG.Seconds(), res.Timing.Pairs.Seconds(),
		res.Timing.Compare.Seconds(), res.Timing.Refutation.Seconds())

	if *verbose {
		fmt.Println()
		for i := range res.Reports {
			fmt.Println(res.Reports[i].Describe(res.Registry))
		}
		if len(res.Reports) > 0 {
			fmt.Println("\ntop report in detail:")
			fmt.Print(res.Reports[0].Explain(res.Registry, res.Graph))
		}
		fmt.Println("\nobservability breakdown:")
		fmt.Print(obs.Format(tr.Snapshot()))
		if capped := tr.Counter("refute.entry_stores_capped"); capped > 0 {
			fmt.Printf("\nnote: %d A-walk constraint stores were dropped at the %d-store cap;\n"+
				"affected pairs are over-approximated (reported rather than refuted).\n",
				capped, symexec.EntryStoreCap)
		}
	}

	if *verifyN > 0 {
		factory := func() (*apk.App, error) {
			return loadApp(*appName, *fdroid, *file)
		}
		n := *verifyN
		if n > len(res.Reports) {
			n = len(res.Reports)
		}
		fmt.Printf("\ndynamic confirmation of the top %d reports:\n", n)
		for i := 0; i < n; i++ {
			p := res.Reports[i].Pair
			out, err := verify.WitnessErr(factory, p, verify.Options{Schedules: 120, EventsPerSchedule: 80, Seed: 1})
			if err != nil {
				fmt.Fprintln(os.Stderr, "sierra: -verify reload:", err)
				os.Exit(1)
			}
			status := "NOT WITNESSED"
			switch {
			case out.Confirmed():
				status = fmt.Sprintf("CONFIRMED (seeds %d / %d)", out.WitnessSeedAB, out.WitnessSeedBA)
			case out.ObservedAB || out.ObservedBA:
				status = "one order observed"
			}
			fmt.Printf("  #%d %s on %s: %s\n", i+1, p.Key(), p.A.Location(), status)
		}
	}
}

// resolveJobs maps the flags' 0-means-auto convention to the machine's
// GOMAXPROCS. Worker counts never change results (every parallel kernel
// is bit-for-bit deterministic), only wall clock.
func resolveJobs(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

func loadApp(name string, fdroid int, file string) (*apk.App, error) {
	switch {
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return appfile.Read(f)
	case name != "":
		row, ok := corpus.RowByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown app %q (try -list)", name)
		}
		app, _ := corpus.NamedApp(row)
		return app, nil
	case fdroid >= 0:
		if fdroid >= corpus.FDroidCount {
			return nil, fmt.Errorf("fdroid index out of range (0..%d)", corpus.FDroidCount-1)
		}
		app, _ := corpus.FDroidApp(fdroid)
		return app, nil
	default:
		return nil, fmt.Errorf("pick one of -app, -fdroid, -file")
	}
}

func parsePolicy(s string) (pointer.Policy, error) {
	switch s {
	case "as", "action":
		return pointer.ActionSensitivePolicy{K: 2}, nil
	case "hybrid":
		return pointer.Hybrid{K: 2}, nil
	case "2obj":
		return pointer.KObj{K: 2}, nil
	case "2cfa":
		return pointer.KCFA{K: 2}, nil
	case "insensitive":
		return pointer.Insensitive{}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", s)
	}
}
