package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
	"sierra/internal/serve"
)

// runServe is the `sierra serve` subcommand: an always-on analysis
// daemon. POST /v1/apps submits an .app document, GET /v1/jobs/{id}
// polls it, GET /v1/reports/{digest} fetches the canonical report;
// /metrics, /progress, /events, /healthz, and /debug/pprof share the
// port. Resubmitted revisions of an already-analyzed app are absorbed
// incrementally when the fingerprint planner proves it safe (see
// internal/incremental), with reports byte-identical to a full run.
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, in-flight
// analyses finish, the flight-recorder sink is flushed, and the process
// exits 0. A second signal hard-cancels in-flight work; a third exits
// 130.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr           = fs.String("addr", "127.0.0.1:7433", "listen address ('host:0' picks a free port, printed on stderr)")
		workers        = fs.Int("workers", 0, "concurrent analyses (0 = GOMAXPROCS)")
		jobTimeout     = fs.Duration("job-timeout", 5*time.Minute, "per-analysis deadline (0 = none)")
		storeDir       = fs.String("store-dir", "", "persist reports in this sharded directory (empty = in-memory only)")
		cacheMaxBytes  = fs.Int64("cache-max-bytes", 0, "bound the persistent report store; a best-effort LRU sweep runs after each batch (0 = unbounded)")
		memEntries     = fs.Int("mem-cache-entries", 0, "in-memory report cache entry cap when -store-dir is unset (0 = default)")
		baselines      = fs.Int("baselines", 0, "warm incremental baselines kept per daemon (0 = default)")
		baselineMaxMem = fs.Int64("baseline-max-bytes", 0, "bound the warm baseline pool by estimated resident bytes, LRU-evicted (0 = entry cap only)")
		queueDepth     = fs.Int("queue-depth", 0, "accepted-but-unstarted submission bound (0 = default)")
		refuteJobs     = fs.Int("refute-jobs", 0, "per-pair refutation workers (0 = GOMAXPROCS; the daemon forces >= 2 for order-independent verdicts)")
		ptaJobs        = fs.Int("pta-jobs", 0, "SCC-partitioned points-to solver workers (0 = GOMAXPROCS; results are identical at any count)")
		shbgJobs       = fs.Int("shbg-jobs", 0, "block-parallel SHBG closure workers (0 = GOMAXPROCS; the graph is identical at any count)")
		refuteMaxPaths = fs.Int("refute-max-paths", 0, "refutation path budget per query (0 = the paper's default)")
		refuteMaxDepth = fs.Int("refute-max-depth", 0, "refutation call-inlining depth bound (0 = the paper's default)")
		events         = fs.String("events", "", "stream sierra-events/1 flight-recorder events as JSONL to this file")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "sierra serve: unexpected arguments %v\n", fs.Args())
		return 2
	}

	tr := obs.New("sierra-serve")
	var sink io.Writer
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sierra serve: -events:", err)
			return 1
		}
		defer f.Close()
		sink = f
	}
	rec := eventlog.New(sink, eventlog.DefaultRingCap)
	defer rec.DumpOnPanic(os.Stderr)

	s, err := serve.New(serve.Config{
		Workers:          *workers,
		JobTimeout:       *jobTimeout,
		RefuteJobs:       *refuteJobs,
		PTAJobs:          *ptaJobs,
		SHBGJobs:         *shbgJobs,
		MaxPaths:         *refuteMaxPaths,
		MaxDepth:         *refuteMaxDepth,
		StoreDir:         *storeDir,
		CacheMaxBytes:    *cacheMaxBytes,
		MemCacheEntries:  *memEntries,
		Baselines:        *baselines,
		BaselineMaxBytes: *baselineMaxMem,
		QueueDepth:       *queueDepth,
		Obs:              tr,
		Events:           rec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sierra serve:", err)
		return 1
	}
	if err := s.Start(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "sierra serve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "sierra serve: listening on http://%s\n", s.Addr())
	rec.Emit(eventlog.Event{Type: "serve_start", Fields: map[string]any{"addr": s.Addr()}})

	// The drain stage runs in its own goroutine: Drain blocks until
	// in-flight analyses finish, and the signal loop must stay free to
	// escalate (second signal = ForceCancel, third = exit 130).
	done := make(chan struct{})
	stop := rec.NotifyDrain(os.Stderr,
		func() {
			go func() {
				s.Drain()
				s.Close()
				rec.Emit(eventlog.Event{Type: "serve_stop"})
				rec.Flush()
				close(done)
			}()
		},
		s.ForceCancel,
	)
	defer stop()

	<-done
	return 0
}
