// Command corpusgen emits corpus apps in the textual .app format so the
// synthetic datasets can be inspected (or re-analyzed via sierra -file).
//
//	corpusgen -app OpenSudoku             # one named app to stdout
//	corpusgen -fdroid 17                  # one generated app to stdout
//	corpusgen -all -out corpus/           # every named app into a dir
//	corpusgen -stagedemo 8                # generated incremental-lane app
//	corpusgen -stagedemo 8 -stagedemo-edit "load w a f1_0"   # edited revision
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/corpus"
)

func main() {
	var (
		appName   = flag.String("app", "", "named dataset app")
		fdroid    = flag.Int("fdroid", -1, "generated dataset index")
		all       = flag.Bool("all", false, "emit every named app")
		out       = flag.String("out", "", "output directory (with -all) or file")
		stagedemo = flag.Int("stagedemo", 0, "emit the generated StageDemo app with this many listener groups")
		stageEdit = flag.String("stagedemo-edit", "", "with -stagedemo: insert this statement into the guarded listener of group 0 (a skeleton-visible one-method edit, e.g. \"load w a f1_0\")")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}

	if *all {
		if *out == "" {
			fail(fmt.Errorf("-all needs -out DIR"))
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		for _, row := range corpus.PaperRows() {
			app, _ := corpus.NamedApp(row)
			f, err := os.Create(filepath.Join(*out, row.Name+".app"))
			if err != nil {
				fail(err)
			}
			if err := appfile.Write(f, app); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s.app\n", row.Name)
		}
		return
	}

	if *stagedemo > 0 {
		raw := corpus.StageDemoText(*stagedemo, corpus.StageDemoEdit{ExtraStmt: *stageEdit})
		if *out == "" {
			os.Stdout.Write(raw)
			return
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fail(err)
		}
		return
	}

	var app *apk.App
	switch {
	case *appName != "":
		row, ok := corpus.RowByName(*appName)
		if !ok {
			fail(fmt.Errorf("unknown app %q", *appName))
		}
		app, _ = corpus.NamedApp(row)
	case *fdroid >= 0:
		app, _ = corpus.FDroidApp(*fdroid)
	default:
		fail(fmt.Errorf("pick one of -app, -fdroid, -all"))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := appfile.Write(w, app); err != nil {
		fail(err)
	}
}
