// Command corpusgen emits corpus apps in the textual .app format so the
// synthetic datasets can be inspected (or re-analyzed via sierra -file).
//
//	corpusgen -app OpenSudoku             # one named app to stdout
//	corpusgen -fdroid 17                  # one generated app to stdout
//	corpusgen -all -out corpus/           # every named app into a dir
//	corpusgen -list-scenarios             # the scenario-family catalog
//	corpusgen -config corpus.cfg -out dir/   # materialize a config-driven corpus
//	corpusgen -stagedemo 8                # generated incremental-lane app
//	corpusgen -stagedemo 8 -stagedemo-edit "load w a f1_0"   # edited revision
//
// Config-driven mode reads the same scenario config as `sierra
// -stream` (named families, weights, per-family knobs, an app count
// and/or a `tot-size` byte budget) and writes the admitted stream to
// -out as zero-padded .app files — the exact corpus a fused `sierra
// -stream` run of that config analyzes, byte for byte. -gen-jobs
// parallelizes generation without changing the output.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"sierra/internal/apk"
	"sierra/internal/appfile"
	"sierra/internal/batch"
	"sierra/internal/corpus"
	"sierra/internal/stream"
)

func main() {
	var (
		appName   = flag.String("app", "", "named dataset app")
		fdroid    = flag.Int("fdroid", -1, "generated dataset index")
		all       = flag.Bool("all", false, "emit every named app")
		out       = flag.String("out", "", "output directory (with -all or -config) or file")
		listScen  = flag.Bool("list-scenarios", false, "print the scenario-family catalog and exit")
		config    = flag.String("config", "", "materialize a scenario config (see -list-scenarios) into -out DIR")
		genJobs   = flag.Int("gen-jobs", 0, "generation workers with -config (0 = GOMAXPROCS; output is identical at any count)")
		stagedemo = flag.Int("stagedemo", 0, "emit the generated StageDemo app with this many listener groups")
		stageEdit = flag.String("stagedemo-edit", "", "with -stagedemo: insert this statement into the guarded listener of group 0 (a skeleton-visible one-method edit, e.g. \"load w a f1_0\")")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}

	if *listScen {
		listScenarios()
		return
	}

	if *config != "" {
		if *out == "" {
			fail(fmt.Errorf("-config needs -out DIR"))
		}
		if err := materializeConfig(*config, *out, *genJobs); err != nil {
			fail(err)
		}
		return
	}

	if *all {
		if *out == "" {
			fail(fmt.Errorf("-all needs -out DIR"))
		}
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fail(err)
		}
		for _, row := range corpus.PaperRows() {
			app, _ := corpus.NamedApp(row)
			f, err := os.Create(filepath.Join(*out, row.Name+".app"))
			if err != nil {
				fail(err)
			}
			if err := appfile.Write(f, app); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s.app\n", row.Name)
		}
		return
	}

	if *stagedemo > 0 {
		raw := corpus.StageDemoText(*stagedemo, corpus.StageDemoEdit{ExtraStmt: *stageEdit})
		if *out == "" {
			os.Stdout.Write(raw)
			return
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fail(err)
		}
		return
	}

	var app *apk.App
	switch {
	case *appName != "":
		row, ok := corpus.RowByName(*appName)
		if !ok {
			fail(fmt.Errorf("unknown app %q", *appName))
		}
		app, _ = corpus.NamedApp(row)
	case *fdroid >= 0:
		app, _ = corpus.FDroidApp(*fdroid)
	default:
		fail(fmt.Errorf("pick one of -app, -fdroid, -all"))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := appfile.Write(w, app); err != nil {
		fail(err)
	}
}

// listScenarios prints the scenario-family catalog: one row per family
// with its default mix weight, tunable knobs (name=default), and a
// one-line description. The same names and knobs are what a scenario
// config's `scenario` directives accept.
func listScenarios() {
	fmt.Printf("%-18s %6s  %-38s %s\n", "FAMILY", "WEIGHT", "KNOBS (name=default)", "DESCRIPTION")
	for _, s := range corpus.Scenarios() {
		knobs := make([]string, len(s.Knobs))
		for i, k := range s.Knobs {
			knobs[i] = fmt.Sprintf("%s=%d", k.Name, k.Default)
		}
		kv := strings.Join(knobs, " ")
		if kv == "" {
			kv = "-"
		}
		fmt.Printf("%-18s %6d  %-38s %s\n", s.Name, s.Weight, kv, s.Desc)
	}
}

// materializeConfig writes the config's admitted app stream into dir as
// zero-padded .app files. Generation runs on the same fused source as
// `sierra -stream` — genJobs workers, in-order budgeted admission — so
// the directory holds exactly the apps a streamed analysis of this
// config would see.
func materializeConfig(path, dir string, genJobs int) error {
	c, err := stream.LoadConfig(path)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if genJobs <= 0 {
		genJobs = runtime.GOMAXPROCS(0)
	}
	write := func(_ context.Context, name string, raw []byte) ([]byte, error) {
		return nil, os.WriteFile(filepath.Join(dir, name+".app"), raw, 0o644)
	}
	src := stream.NewSource(c, write, stream.SourceOptions{GenJobs: genJobs})
	defer src.Stop()
	results, err := batch.RunSource(nil, src, batch.Options{Workers: genJobs})
	if err != nil {
		return err
	}
	for _, r := range results {
		if r.Status != batch.StatusOK {
			return fmt.Errorf("writing %s: %s (%v)", r.Name, r.Status, r.Err)
		}
	}
	apps, bytes := src.Emitted()
	fmt.Fprintf(os.Stderr, "corpusgen: wrote %d apps (%d bytes) from %s to %s\n", apps, bytes, c.Name, dir)
	return nil
}
