// Command evaluate regenerates the paper's evaluation tables (§6):
//
//	evaluate -table 2          # dataset metadata (Table 2)
//	evaluate -table 3          # effectiveness on the 20-app dataset
//	evaluate -table 4          # per-stage timings
//	evaluate -table 5          # 174-app dataset medians
//	evaluate -table all        # everything
//
// Table 3's EventRacer column needs the dynamic baseline; pass -dynamic
// to run it (a few schedules per app).
//
// Per-app measurements fan out across a bounded worker pool (-jobs,
// default GOMAXPROCS); results are emitted in input order, so tables
// are byte-identical to a sequential run for any worker count. With
// -cache-dir, results are cached by app digest + options fingerprint
// and a re-run of an unchanged corpus is near-free.
//
// Live telemetry (see README.md "Live telemetry"): -events-out streams
// sierra-events/1 JSONL flight-recorder events and -debug-addr serves
// /metrics, /progress, /events, /healthz, and /debug/pprof while the
// evaluation runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"sierra/internal/batch"
	"sierra/internal/corpus"
	"sierra/internal/metrics"
	"sierra/internal/obs"
	"sierra/internal/obs/eventlog"
	"sierra/internal/obs/export"
	"sierra/internal/pointer"
)

func main() {
	var (
		table      = flag.String("table", "all", "which table to regenerate: 2 | 3 | 4 | 5 | all")
		dynamic    = flag.Bool("dynamic", true, "run the EventRacer baseline for Table 3")
		schedules  = flag.Int("schedules", 5, "dynamic schedules per app")
		events     = flag.Int("events", 40, "events per dynamic schedule")
		nFDroid    = flag.Int("fdroid-count", corpus.FDroidCount, "how many generated apps for Table 5")
		quiet      = flag.Bool("q", false, "suppress progress output")
		jobs       = flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent analysis workers")
		jobTimeout = flag.Duration("job-timeout", 0, "per-app analysis deadline (0 = none); a timed-out app yields a partial row")
		cacheDir   = flag.String("cache-dir", "", "cache analysis results in this directory, keyed by app digest + options")
		ptaSolver  = flag.String("pta-solver", "delta", "points-to fixpoint solver: delta | exhaustive (identical tables; delta is faster)")
		refPaths   = flag.Int("refute-max-paths", 5000, "refutation path budget per query (the paper's 5,000)")
		refDepth   = flag.Int("refute-max-depth", 6, "refutation call-inlining depth bound (the paper's 6)")
		ptaJobs    = flag.Int("pta-jobs", 1, "SCC-partitioned points-to solver workers per app (1 = sequential fixpoint; identical tables at any count)")
		shbgJobs   = flag.Int("shbg-jobs", 1, "block-parallel SHBG closure workers per app (1 = sequential closure; identical tables at any count)")
		benchJSON  = flag.String("bench-json", "", "write per-stage timings + effort counters for the 20-app dataset as JSON to this file and exit (e.g. BENCH_sierra.json)")
		incrBench  = flag.String("incr-bench", "", "write the incremental lane (cold vs warm one-method skeleton-visible edit) as JSON to this file and exit (e.g. BENCH_incremental.json)")
		streamCfg  = flag.String("stream", "", "run the fused streaming pipeline over this scenario config and print its verdict table (see corpusgen -list-scenarios)")
		streamOut  = flag.String("stream-bench", "", "with -stream CONFIG: measure fused vs materialized throughput and write sierra-stream-bench/v1 JSON to this file (e.g. BENCH_streaming.json)")
		genJobs    = flag.Int("gen-jobs", 0, "generation workers for -stream (0 = GOMAXPROCS; the admitted stream is identical at any count)")
		incrIters  = flag.Int("incr-iters", 5, "measurement iterations per side for -incr-bench")
		incrGroups = flag.Int("incr-groups", 24, "listener-trio groups in the generated app -incr-bench edits")
		eventsOut  = flag.String("events-out", "", "stream sierra-events/1 flight-recorder events as JSONL to this file (-events is taken by the dynamic baseline)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /progress, /events, /healthz, and /debug/pprof on this address while the evaluation runs")
		pprofCPU   = flag.String("pprof-cpu", "", "write a CPU profile of the evaluation to this file")
		pprofMem   = flag.String("pprof-mem", "", "write a heap profile after the evaluation to this file")
	)
	flag.Parse()

	solver, err := pointer.ParseSolver(*ptaSolver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate: -pta-solver:", err)
		os.Exit(1)
	}

	if *pprofCPU != "" {
		f, err := os.Create(*pprofCPU)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *pprofMem != "" {
		defer func() {
			f, err := os.Create(*pprofMem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evaluate:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "evaluate:", err)
			}
		}()
	}

	bopts := metrics.BatchOptions{Jobs: *jobs, JobTimeout: *jobTimeout}
	if *cacheDir != "" {
		c, err := batch.NewDirCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaluate: -cache-dir:", err)
			os.Exit(1)
		}
		bopts.Cache = c
	}

	// Live telemetry (shared with cmd/sierra; see README.md "Live
	// telemetry"): a flight recorder behind -events-out / -debug-addr,
	// a progress tracker the batch engine updates, and the debug server.
	var rec *eventlog.Recorder
	if *eventsOut != "" || *debugAddr != "" {
		var sink io.Writer
		if *eventsOut != "" {
			f, err := os.Create(*eventsOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evaluate: -events-out:", err)
				os.Exit(1)
			}
			defer f.Close()
			sink = f
		}
		rec = eventlog.New(sink, eventlog.DefaultRingCap)
		bopts.Events = rec
		bopts.Tracker = &batch.Tracker{}
	}
	defer rec.DumpOnPanic(os.Stderr)
	if *debugAddr != "" {
		if bopts.Obs == nil {
			bopts.Obs = obs.New("evaluate")
		}
		srv, err := export.Serve(*debugAddr, export.Options{
			Trace:    bopts.Obs,
			Events:   rec,
			Progress: func() any { return bopts.Tracker.Snapshot() },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaluate: -debug-addr:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "evaluate: debug server on http://%s\n", srv.Addr())
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if rec != nil {
		stop := rec.NotifySignals(os.Stderr, cancel)
		defer stop()
		rec.Emit(eventlog.Event{Type: "run_start", Fields: map[string]any{
			"table":   *table,
			"jobs":    *jobs,
			"solver":  *ptaSolver,
			"dynamic": *dynamic,
			"cache":   *cacheDir != "",
			"git_sha": gitSHA(),
		}})
		defer func() {
			rec.Emit(eventlog.Event{Type: "run_end",
				Fields: map[string]any{"progress": bopts.Tracker.Snapshot()}})
			rec.Flush()
		}()
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(ctx, *benchJSON, *quiet, solver, bopts); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		return
	}
	if *incrBench != "" {
		if err := runIncrBench(*incrBench, *incrIters, *incrGroups, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		return
	}
	if *streamOut != "" && *streamCfg == "" {
		fmt.Fprintln(os.Stderr, "evaluate: -stream-bench needs -stream CONFIG")
		os.Exit(1)
	}
	if *streamCfg != "" {
		so := streamOpts{
			solver:   solver,
			refPaths: *refPaths,
			refDepth: *refDepth,
			ptaJobs:  *ptaJobs,
			shbgJobs: *shbgJobs,
			jobs:     *jobs,
			genJobs:  *genJobs,
			quiet:    *quiet,
		}
		if so.genJobs <= 0 {
			so.genJobs = runtime.GOMAXPROCS(0)
		}
		var err error
		if *streamOut != "" {
			err = runStreamBench(ctx, *streamCfg, *streamOut, so)
		} else {
			err = runStreamEval(ctx, *streamCfg, so)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		return
	}

	opts := metrics.Options{
		WithDynamic:       *dynamic,
		Schedules:         *schedules,
		EventsPerSchedule: *events,
		Solver:            solver,
		RefuteMaxPaths:    *refPaths,
		RefuteMaxDepth:    *refDepth,
		PTAJobs:           *ptaJobs,
		SHBGJobs:          *shbgJobs,
	}

	progress := func(total int) func(int, batch.Result) {
		if *quiet {
			return nil
		}
		return func(i int, r batch.Result) {
			fmt.Fprintf(os.Stderr, "[%2d/%d] %s (%s)\n", i+1, total, r.Name, r.Status)
		}
	}

	want := func(t string) bool { return *table == "all" || *table == t }

	if want("2") {
		fmt.Println(metrics.FormatTable2())
	}

	var named []metrics.Row
	if want("3") || want("4") {
		rows := corpus.PaperRows()
		b := bopts
		b.Progress = progress(len(rows))
		named, _ = metrics.EvaluateNamedBatch(ctx, rows, opts, b)
	}
	if want("3") {
		fmt.Println(metrics.FormatTable3(named))
	}
	if want("4") {
		fmt.Println(metrics.FormatTable4(named))
	}

	if want("5") {
		b := bopts
		if !*quiet {
			b.Progress = func(i int, r batch.Result) {
				if i%25 == 0 {
					fmt.Fprintf(os.Stderr, "[fdroid %d/%d]\n", i, *nFDroid)
				}
			}
		}
		rows, sizes, _ := metrics.EvaluateFDroidBatch(ctx, *nFDroid,
			metrics.Options{Solver: solver, RefuteMaxPaths: *refPaths, RefuteMaxDepth: *refDepth,
				PTAJobs: *ptaJobs, SHBGJobs: *shbgJobs}, b)
		fmt.Println(metrics.FormatTable5(rows, sizes))
	}
}

// benchReport is the -bench-json schema (sierra-bench/v1): one
// static-pipeline measurement per 20-app-dataset member plus the
// per-column median, batch wall-clock throughput, and cache
// effectiveness. Rows carry the Table 3/4 columns and the observability
// effort counters, so CI can track the perf trajectory from one
// artifact.
type benchReport struct {
	Schema string `json:"schema"`
	// GitSHA is the commit the binary was built from (empty when the
	// working tree is not a git checkout), so a BENCH_*.json artifact
	// and the trajectory entries benchdiff.sh appends are attributable
	// to a revision.
	GitSHA string        `json:"git_sha,omitempty"`
	Apps   []metrics.Row `json:"apps"`
	Median metrics.Row   `json:"median"`
	// Jobs is the worker count the batch ran with.
	Jobs int `json:"jobs"`
	// WallSeconds / AppsPerSecond measure end-to-end batch throughput
	// (unlike the per-row timings, these shrink as -jobs grows).
	WallSeconds   float64 `json:"wall_seconds"`
	AppsPerSecond float64 `json:"apps_per_second"`
	// Cache effectiveness for the run (hits + misses == apps when a
	// cache is configured; all zero otherwise).
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// gitSHA resolves the checkout's HEAD commit, empty when git or the
// repository is unavailable (the artifact is then simply unattributed).
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// writeBenchJSON measures the 20-app dataset (static pipeline only — no
// dynamic baseline, so the artifact is deterministic and fast) and
// writes the benchReport.
func writeBenchJSON(ctx context.Context, path string, quiet bool, solver pointer.Solver, bopts metrics.BatchOptions) error {
	rows := corpus.PaperRows()
	if bopts.Jobs <= 0 {
		bopts.Jobs = runtime.GOMAXPROCS(0)
	}
	// Keep an Obs wired by -debug-addr (the server holds the pointer);
	// otherwise make one for the cache counters the report embeds.
	if bopts.Obs == nil {
		bopts.Obs = obs.New("bench")
	}
	if !quiet {
		bopts.Progress = func(i int, r batch.Result) {
			fmt.Fprintf(os.Stderr, "[%2d/%d] %s (%s)\n", i+1, len(rows), r.Name, r.Status)
		}
	}
	start := time.Now()
	measured, results := metrics.EvaluateNamedBatch(ctx, rows, metrics.Options{Solver: solver}, bopts)
	sum := batch.Summarize(results, time.Since(start))

	report := benchReport{
		Schema:        "sierra-bench/v1",
		GitSHA:        gitSHA(),
		Apps:          measured,
		Median:        metrics.MedianRow(measured),
		Jobs:          bopts.Jobs,
		WallSeconds:   sum.WallSecs,
		AppsPerSecond: sum.JobsPerSec,
		CacheHits:     bopts.Obs.Counter("batch.cache_hits"),
		CacheMisses:   bopts.Obs.Counter("batch.cache_misses"),
		CacheHitRate:  sum.CacheHitRate,
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
