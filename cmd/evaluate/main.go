// Command evaluate regenerates the paper's evaluation tables (§6):
//
//	evaluate -table 2          # dataset metadata (Table 2)
//	evaluate -table 3          # effectiveness on the 20-app dataset
//	evaluate -table 4          # per-stage timings
//	evaluate -table 5          # 174-app dataset medians
//	evaluate -table all        # everything
//
// Table 3's EventRacer column needs the dynamic baseline; pass -dynamic
// to run it (a few schedules per app).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"sierra/internal/corpus"
	"sierra/internal/metrics"
)

func main() {
	var (
		table     = flag.String("table", "all", "which table to regenerate: 2 | 3 | 4 | 5 | all")
		dynamic   = flag.Bool("dynamic", true, "run the EventRacer baseline for Table 3")
		schedules = flag.Int("schedules", 5, "dynamic schedules per app")
		events    = flag.Int("events", 40, "events per dynamic schedule")
		nFDroid   = flag.Int("fdroid-count", corpus.FDroidCount, "how many generated apps for Table 5")
		quiet     = flag.Bool("q", false, "suppress progress output")
		benchJSON = flag.String("bench-json", "", "write per-stage timings + effort counters for the 20-app dataset as JSON to this file and exit (e.g. BENCH_sierra.json)")
		pprofCPU  = flag.String("pprof-cpu", "", "write a CPU profile of the evaluation to this file")
		pprofMem  = flag.String("pprof-mem", "", "write a heap profile after the evaluation to this file")
	)
	flag.Parse()

	if *pprofCPU != "" {
		f, err := os.Create(*pprofCPU)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *pprofMem != "" {
		defer func() {
			f, err := os.Create(*pprofMem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evaluate:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "evaluate:", err)
			}
		}()
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			os.Exit(1)
		}
		return
	}

	opts := metrics.Options{
		WithDynamic:       *dynamic,
		Schedules:         *schedules,
		EventsPerSchedule: *events,
	}

	progress := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format, args...)
		}
	}

	want := func(t string) bool { return *table == "all" || *table == t }

	if want("2") {
		fmt.Println(metrics.FormatTable2())
	}

	var named []metrics.Row
	if want("3") || want("4") {
		rows := corpus.PaperRows()
		for i, pr := range rows {
			progress("[%2d/%d] %s\n", i+1, len(rows), pr.Name)
			named = append(named, metrics.EvaluateNamed(pr, opts))
		}
	}
	if want("3") {
		fmt.Println(metrics.FormatTable3(named))
	}
	if want("4") {
		fmt.Println(metrics.FormatTable4(named))
	}

	if want("5") {
		var rows []metrics.Row
		var sizes []int
		for i := 0; i < *nFDroid; i++ {
			if i%25 == 0 {
				progress("[fdroid %d/%d]\n", i, *nFDroid)
			}
			rows = append(rows, metrics.EvaluateFDroid(i, metrics.Options{}))
			app, _ := corpus.FDroidApp(i)
			sizes = append(sizes, app.BytecodeSize())
		}
		fmt.Println(metrics.FormatTable5(rows, sizes))
	}
}

// benchReport is the -bench-json schema: one static-pipeline measurement
// per 20-app-dataset member plus the per-column median. Rows carry the
// Table 3/4 columns and the observability effort counters, so CI can
// track the perf trajectory from one artifact.
type benchReport struct {
	Schema string        `json:"schema"`
	Apps   []metrics.Row `json:"apps"`
	Median metrics.Row   `json:"median"`
}

// writeBenchJSON measures the 20-app dataset (static pipeline only — no
// dynamic baseline, so the artifact is deterministic and fast) and
// writes the benchReport.
func writeBenchJSON(path string, quiet bool) error {
	rows := corpus.PaperRows()
	report := benchReport{Schema: "sierra-bench/v1"}
	for i, pr := range rows {
		if !quiet {
			fmt.Fprintf(os.Stderr, "[%2d/%d] %s\n", i+1, len(rows), pr.Name)
		}
		report.Apps = append(report.Apps, metrics.EvaluateNamed(pr, metrics.Options{}))
	}
	report.Median = metrics.MedianRow(report.Apps)
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
