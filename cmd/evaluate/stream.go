package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/shbg"
	"sierra/internal/stream"
	"sierra/internal/symexec"
)

// streamBenchTarget is the acceptance floor: the fused pipeline (which
// pays for generation inline) must sustain at least this fraction of
// the throughput of analyzing the same corpus pre-materialized on disk.
const streamBenchTarget = 0.95

// streamOpts bundles the analysis knobs the streaming lanes share with
// the rest of evaluate.
type streamOpts struct {
	solver   pointer.Solver
	refPaths int
	refDepth int
	ptaJobs  int
	shbgJobs int
	jobs     int
	genJobs  int
	quiet    bool
}

func (o streamOpts) coreOptions() core.Options {
	return core.Options{
		Refuter:   symexec.Config{MaxPaths: o.refPaths, MaxDepth: o.refDepth},
		SHBG:      shbg.Options{Jobs: o.shbgJobs},
		PTASolver: o.solver,
		PTAJobs:   o.ptaJobs,
	}
}

// laneStats is one throughput measurement in the stream-bench report.
type laneStats struct {
	Apps          int     `json:"apps"`
	WallSeconds   float64 `json:"wall_seconds"`
	AppsPerSecond float64 `json:"apps_per_second"`
	// RSSHighWater is the peak live heap (runtime.ReadMemStats
	// HeapAlloc) observed by a background sampler during the lane.
	RSSHighWater uint64 `json:"rss_high_water_bytes"`
	// QueuePeak is the deepest the bounded prefetch queue got
	// (batch.stream_queue_peak); zero for the disk lane, whose jobs are
	// a materialized slice.
	QueuePeak float64 `json:"queue_peak,omitempty"`
}

// streamBenchReport is the -stream-bench schema (sierra-stream-bench/v1):
// the fused-vs-materialized throughput comparison plus the invariants
// the streaming pipeline promises — bounded queue, bounded memory, and
// byte-identical verdict tables.
type streamBenchReport struct {
	Schema  string `json:"schema"`
	GitSHA  string `json:"git_sha,omitempty"`
	Config  string `json:"config"`
	Corpus  string `json:"corpus"`
	Mix     string `json:"mix"`
	Jobs    int    `json:"jobs"`
	GenJobs int    `json:"gen_jobs"`
	// CorpusBytes is the admitted stream's total size — bytes that never
	// touch disk in the stream lane.
	CorpusBytes int64     `json:"corpus_bytes"`
	Stream      laneStats `json:"stream"`
	Disk        laneStats `json:"disk"`
	// ThroughputRatio is stream apps/sec over disk apps/sec; the
	// acceptance floor is RatioTarget.
	ThroughputRatio float64 `json:"throughput_ratio"`
	RatioTarget     float64 `json:"ratio_target"`
	RatioOK         bool    `json:"ratio_ok"`
	// VerdictParity is the headline invariant: both lanes rendered
	// byte-identical verdict tables.
	VerdictParity bool `json:"verdict_parity"`
}

// rssSampler watches the live heap from a background goroutine; Stop
// returns the high-water mark. ReadMemStats is cheap at this cadence
// (~50 Hz) relative to per-app analysis cost.
type rssSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func startRSSSampler() *rssSampler {
	s := &rssSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > s.peak {
				s.peak = ms.HeapAlloc
			}
			select {
			case <-tick.C:
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

func (s *rssSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	return s.peak
}

// runStreamLane drives the fused pipeline over cfg and returns its
// results plus lane stats.
func runStreamLane(ctx context.Context, cfg *stream.Config, o streamOpts) ([]batch.Result, laneStats, int64, error) {
	tr := obs.New("evaluate:stream")
	analyze := stream.Analyzer(o.coreOptions(), nil)
	src := stream.NewSource(cfg, analyze, stream.SourceOptions{GenJobs: o.genJobs, Obs: tr})
	defer src.Stop()

	var onResult func(int, batch.Result)
	if !o.quiet {
		var n int
		var mu sync.Mutex
		onResult = func(i int, r batch.Result) {
			mu.Lock()
			n++
			if n%200 == 0 {
				fmt.Fprintf(os.Stderr, "[stream %d] %s\n", n, r.Name)
			}
			mu.Unlock()
		}
	}

	runtime.GC() // start from a collected heap so lane order doesn't bias the timing
	sampler := startRSSSampler()
	start := time.Now()
	results, err := batch.RunSource(ctx, src, batch.Options{
		Workers: o.jobs, Obs: tr, OnResult: onResult,
	})
	wall := time.Since(start).Seconds()
	peak := sampler.Stop()
	if err != nil {
		return nil, laneStats{}, 0, err
	}
	_, corpusBytes := src.Emitted()
	st := laneStats{
		Apps:          len(results),
		WallSeconds:   wall,
		AppsPerSecond: float64(len(results)) / wall,
		RSSHighWater:  peak,
		QueuePeak:     tr.GaugeValue("batch.stream_queue_peak"),
	}
	return results, st, corpusBytes, nil
}

// runDiskLane materializes cfg into dir (untimed — that cost is the
// thing streaming deletes), then measures a classic glob-style batch
// run over the files.
func runDiskLane(ctx context.Context, cfg *stream.Config, dir string, o streamOpts) ([]batch.Result, laneStats, error) {
	if err := cfg.Stream(func(a stream.StreamApp) error {
		return os.WriteFile(filepath.Join(dir, a.Name+".app"), a.Raw, 0o644)
	}); err != nil {
		return nil, laneStats{}, err
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.app"))
	if err != nil {
		return nil, laneStats{}, err
	}
	sort.Strings(files)
	analyze := stream.Analyzer(o.coreOptions(), nil)
	jobs := make([]batch.Job, len(files))
	for i := range files {
		path := files[i]
		jobs[i] = batch.Job{
			Name: path,
			Fn: func(jctx context.Context) ([]byte, error) {
				raw, err := os.ReadFile(path)
				if err != nil {
					return nil, err
				}
				return analyze(jctx, path, raw)
			},
		}
	}
	runtime.GC() // start from a collected heap so lane order doesn't bias the timing
	sampler := startRSSSampler()
	start := time.Now()
	results := batch.Run(ctx, jobs, batch.Options{Workers: o.jobs})
	wall := time.Since(start).Seconds()
	peak := sampler.Stop()
	return results, laneStats{
		Apps:          len(results),
		WallSeconds:   wall,
		AppsPerSecond: float64(len(results)) / wall,
		RSSHighWater:  peak,
	}, nil
}

// runStreamEval is `evaluate -stream CONFIG` without -stream-bench: run
// the fused pipeline once and print its verdict table plus a trailer.
func runStreamEval(ctx context.Context, cfgPath string, o streamOpts) error {
	cfg, err := stream.LoadConfig(cfgPath)
	if err != nil {
		return err
	}
	results, st, corpusBytes, err := runStreamLane(ctx, cfg, o)
	if err != nil {
		return err
	}
	os.Stdout.Write(stream.VerdictTable(results))
	fmt.Fprintf(os.Stderr, "stream: %d apps (%d bytes, never on disk) in %.2fs — %.1f apps/s, queue peak %.0f, heap high water %.1f MB\n",
		st.Apps, corpusBytes, st.WallSeconds, st.AppsPerSecond, st.QueuePeak, float64(st.RSSHighWater)/(1<<20))
	for _, r := range results {
		if r.Status == batch.StatusFailed || r.Status == batch.StatusPanic {
			return fmt.Errorf("%s: %s", r.Name, r.Status)
		}
	}
	return nil
}

// runStreamBench measures both lanes over the same config and writes the
// sierra-stream-bench/v1 artifact. The disk lane's corpus lives in a
// temp directory that is deleted afterwards.
func runStreamBench(ctx context.Context, cfgPath, outPath string, o streamOpts) error {
	cfg, err := stream.LoadConfig(cfgPath)
	if err != nil {
		return err
	}

	// The disk lane runs first: its untimed materialization pass
	// generates the whole corpus, which doubles as process warmup (heap
	// grown to steady state, GC out of its ramp) so neither timed lane
	// pays the startup transient. Running the fused lane first was
	// measurably biased against it.
	dir, err := os.MkdirTemp("", "sierra-streambench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "stream-bench: disk lane (materialize to %s, then batch)\n", dir)
	}
	diskResults, diskStats, err := runDiskLane(ctx, cfg, dir, o)
	if err != nil {
		return err
	}

	if !o.quiet {
		fmt.Fprintf(os.Stderr, "stream-bench: fused lane over %s (gen-jobs=%d jobs=%d)\n", cfgPath, o.genJobs, o.jobs)
	}
	streamResults, streamStats, corpusBytes, err := runStreamLane(ctx, cfg, o)
	if err != nil {
		return err
	}

	ratio := 0.0
	if diskStats.AppsPerSecond > 0 {
		ratio = streamStats.AppsPerSecond / diskStats.AppsPerSecond
	}
	report := streamBenchReport{
		Schema:          "sierra-stream-bench/v1",
		GitSHA:          gitSHA(),
		Config:          cfgPath,
		Corpus:          cfg.Name,
		Mix:             cfg.MixSummary(),
		Jobs:            o.jobs,
		GenJobs:         o.genJobs,
		CorpusBytes:     corpusBytes,
		Stream:          streamStats,
		Disk:            diskStats,
		ThroughputRatio: ratio,
		RatioTarget:     streamBenchTarget,
		RatioOK:         ratio >= streamBenchTarget,
		VerdictParity:   bytes.Equal(stream.VerdictTable(streamResults), stream.VerdictTable(diskResults)),
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, raw, 0o644); err != nil {
		return err
	}
	if !o.quiet {
		fmt.Fprintf(os.Stderr, "stream-bench: %d apps — stream %.1f/s vs disk %.1f/s (ratio %.3f, floor %.2f), parity=%t → %s\n",
			streamStats.Apps, streamStats.AppsPerSecond, diskStats.AppsPerSecond, ratio, streamBenchTarget, report.VerdictParity, outPath)
	}
	if !report.VerdictParity {
		return fmt.Errorf("verdict tables differ between the stream and disk lanes")
	}
	return nil
}
