package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"sierra/internal/appfile"
	"sierra/internal/batch"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/incremental"
	"sierra/internal/serve"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

// incrBenchReport is the -incr-bench schema (sierra-bench-incr/v1): the
// cold-vs-warm comparison for one canonical skeleton-visible edit — a
// dataflow-sink statement inserted into one listener of a generated
// multi-group app. Cold is parse + fingerprint + full pipeline on the
// edited revision; warm is parse + fingerprint + partial stage reuse
// against a fresh baseline (built untimed each iteration, so the warm
// number is one apply, not an amortized average). Reports are asserted
// byte-identical every iteration before any timing is written.
type incrBenchReport struct {
	Schema string `json:"schema"`
	GitSHA string `json:"git_sha,omitempty"`
	// Groups sizes the generated app (independent listener trios);
	// Iters is the measurement count per side.
	Groups int `json:"groups"`
	Iters  int `json:"iters"`
	// ColdMsMedian / WarmMsMedian are the per-side medians; Speedup is
	// their ratio (the ISSUE's acceptance floor is 3x).
	ColdMsMedian float64 `json:"cold_ms_median"`
	WarmMsMedian float64 `json:"warm_ms_median"`
	Speedup      float64 `json:"speedup"`
	// Pair-table accounting for the warm apply.
	PairsTotal     int `json:"pairs_total"`
	PairsRerefuted int `json:"pairs_rerefuted"`
	PairsSpliced   int `json:"pairs_spliced"`
	// StagesReused counts the pipeline stages patched rather than
	// recomputed (points-to + SHBG = 2 on the canonical edit).
	StagesReused int `json:"stages_reused"`
	// ByteIdentical records the report-parity assertion (always true in
	// a written artifact — a mismatch fails the run instead).
	ByteIdentical bool `json:"byte_identical"`
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// runIncrBench measures the incremental lane and writes the artifact.
func runIncrBench(path string, iters, groups int, quiet bool) error {
	if iters < 1 {
		iters = 1
	}
	baseRaw := corpus.StageDemoText(groups, corpus.StageDemoEdit{})
	editRaw := corpus.StageDemoText(groups, corpus.StageDemoEdit{ExtraStmt: "load w a f1_0"})
	editDigest := batch.RawDigest(editRaw)
	refCfg := symexec.Config{Jobs: 2} // per-pair-pure verdicts, splice-safe
	opts := core.Options{Refuter: refCfg}

	var coldMs, warmMs []float64
	var stats incremental.StageStats
	for it := 0; it < iters; it++ {
		// Cold: what serve does without a baseline — parse, fingerprint,
		// full pipeline. The forced collection before each timed window
		// keeps the other side's garbage from being charged to it (in the
		// daemon, GC cost follows allocation, which is exactly what each
		// window's own work incurs).
		runtime.GC()
		t0 := time.Now()
		capp, err := appfile.Read(bytes.NewReader(editRaw))
		if err != nil {
			return err
		}
		incremental.Compute(capp)
		cres := core.Analyze(capp, opts)
		coldMs = append(coldMs, float64(time.Since(t0))/1e6)
		coldDoc := serve.RenderReport(editDigest, cres)

		// Baseline (untimed): a fresh warm analysis of the base revision.
		bapp, err := appfile.Read(bytes.NewReader(baseRaw))
		if err != nil {
			return err
		}
		bfp := incremental.Compute(bapp) // before analysis extends the program
		bopts := opts
		bopts.KeepPTAWarm = true
		bres := core.Analyze(bapp, bopts)
		baseline := &incremental.Baseline{
			Name: bapp.Name, Digest: batch.RawDigest(baseRaw),
			FP: bfp, App: bapp, Res: bres, Warm: bres.PTAWarm,
		}

		// Warm: parse, fingerprint, partial stage reuse.
		runtime.GC()
		t1 := time.Now()
		wapp, err := appfile.Read(bytes.NewReader(editRaw))
		if err != nil {
			return err
		}
		wfp := incremental.Compute(wapp)
		st, ok := baseline.ApplyStages(wapp, wfp, editDigest, refCfg, shbg.Options{}, nil)
		if !ok {
			return fmt.Errorf("incr-bench: stage apply declined (%s); the canonical edit must stay warm", st.Plan.Reason)
		}
		warmMs = append(warmMs, float64(time.Since(t1))/1e6)
		stats = st

		warmDoc := serve.RenderReport(editDigest, baseline.Res)
		if !bytes.Equal(coldDoc, warmDoc) {
			return fmt.Errorf("incr-bench: warm report differs from cold (iteration %d)", it)
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "[incr %d/%d] cold %.1fms warm %.1fms (%d/%d pairs re-refuted)\n",
				it+1, iters, coldMs[it], warmMs[it], st.PairsRerefuted, st.PairsTotal)
		}
	}

	rep := incrBenchReport{
		Schema:         "sierra-bench-incr/v1",
		GitSHA:         gitSHA(),
		Groups:         groups,
		Iters:          iters,
		ColdMsMedian:   median(coldMs),
		WarmMsMedian:   median(warmMs),
		PairsTotal:     stats.PairsTotal,
		PairsRerefuted: stats.PairsRerefuted,
		PairsSpliced:   stats.PairsSpliced,
		ByteIdentical:  true,
	}
	if rep.WarmMsMedian > 0 {
		rep.Speedup = rep.ColdMsMedian / rep.WarmMsMedian
	}
	if stats.ReusedPTA {
		rep.StagesReused++
	}
	if stats.ReusedSHBG {
		rep.StagesReused++
	}
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
