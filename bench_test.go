// Benchmarks regenerating the paper's evaluation (one benchmark per
// table) plus ablations over the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Absolute times differ from the paper (its substrate was real 2017 APKs
// on WALA/Z3); the benchmarks document the pipeline's cost structure and
// re-derive every table's numbers. Shape assertions live in the package
// tests; these report metrics via b.ReportMetric so the funnel is
// visible in benchmark output.
package sierra

import (
	"fmt"
	"testing"

	"sierra/internal/actions"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/eventracer"
	"sierra/internal/harness"
	"sierra/internal/interp"
	"sierra/internal/metrics"
	"sierra/internal/obs"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

// BenchmarkTable2Corpus measures generating the 20-app dataset and
// reports its total model bytecode size (Table 2's size column).
func BenchmarkTable2Corpus(b *testing.B) {
	var totalKB float64
	for i := 0; i < b.N; i++ {
		totalKB = 0
		for _, row := range corpus.PaperRows() {
			app, _ := corpus.NamedApp(row)
			totalKB += float64(app.BytecodeSize()) / 1024
		}
	}
	b.ReportMetric(totalKB, "modelKB")
}

// BenchmarkTable3Effectiveness runs the full pipeline per named app
// (racy pairs with/without action sensitivity, refutation) — Table 3.
func BenchmarkTable3Effectiveness(b *testing.B) {
	for _, row := range corpus.PaperRows() {
		row := row
		b.Run(row.Name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				app, _ := corpus.NamedApp(row)
				res = core.Analyze(app, core.Options{CompareContexts: true})
			}
			b.ReportMetric(float64(res.NumActions()), "actions")
			b.ReportMetric(float64(res.HBEdges()), "hbEdges")
			b.ReportMetric(float64(res.RacyPairsNoAS), "racyNoAS")
			b.ReportMetric(float64(len(res.RacyPairs)), "racyAS")
			b.ReportMetric(float64(res.TrueRaces()), "afterRefut")
		})
	}
}

// BenchmarkTable4Stages isolates the three pipeline stages Table 4
// times: call graph + pointer analysis, SHBG construction, refutation.
func BenchmarkTable4Stages(b *testing.B) {
	row, _ := corpus.RowByName("KeePassDroid") // a mid-sized app

	b.Run("CG+PA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			app, _ := corpus.NamedApp(row)
			hs := harness.Generate(app)
			actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
		}
	})
	b.Run("HBG", func(b *testing.B) {
		app, _ := corpus.NamedApp(row)
		hs := harness.Generate(app)
		reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			shbg.Build(reg, res, shbg.Options{})
		}
	})
	b.Run("Refutation", func(b *testing.B) {
		app, _ := corpus.NamedApp(row)
		hs := harness.Generate(app)
		reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
		g := shbg.Build(reg, res, shbg.Options{})
		pairs := race.RacyPairs(reg, g, race.CollectAccesses(reg, res))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ref := symexec.NewRefuter(reg, res, symexec.Config{})
			for _, p := range pairs {
				ref.Check(p)
			}
		}
	})
}

// BenchmarkAnalyze is the nil-Obs baseline for the observability layer:
// the full pipeline with tracing disabled. BenchmarkAnalyzeObs runs the
// identical workload with a live trace; the two must stay within noise
// of each other (the hot paths only pay a nil check when Obs is off,
// and stage-local accumulators when it is on).
func BenchmarkAnalyze(b *testing.B) {
	row, _ := corpus.RowByName("OpenSudoku")
	for i := 0; i < b.N; i++ {
		app, _ := corpus.NamedApp(row)
		core.Analyze(app, core.Options{CompareContexts: true})
	}
}

// BenchmarkAnalyzeObs is BenchmarkAnalyze with tracing enabled — the
// delta between the two is the observability overhead.
func BenchmarkAnalyzeObs(b *testing.B) {
	row, _ := corpus.RowByName("OpenSudoku")
	for i := 0; i < b.N; i++ {
		app, _ := corpus.NamedApp(row)
		core.Analyze(app, core.Options{CompareContexts: true, Obs: obs.New("bench")})
	}
}

// BenchmarkTable5LargeCorpus runs the pipeline over a slice of the
// generated 174-app dataset and reports the medians Table 5 tracks.
func BenchmarkTable5LargeCorpus(b *testing.B) {
	const sample = 30 // of corpus.FDroidCount; cmd/evaluate runs all 174
	var rows []metrics.Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for j := 0; j < sample; j++ {
			rows = append(rows, metrics.EvaluateFDroid(j, metrics.Options{}))
		}
	}
	m := metrics.MedianRow(rows)
	b.ReportMetric(float64(m.Actions), "medActions")
	b.ReportMetric(float64(m.RacyAS), "medRacyAS")
	b.ReportMetric(float64(m.AfterRefut), "medAfterRefut")
}

// BenchmarkAblationContexts compares candidate counts across context
// policies (the paper's §3.3 comparison generalized).
func BenchmarkAblationContexts(b *testing.B) {
	row, _ := corpus.RowByName("APV")
	policies := []pointer.Policy{
		pointer.Insensitive{},
		pointer.KCFA{K: 2},
		pointer.KObj{K: 2},
		pointer.Hybrid{K: 2},
		pointer.ActionSensitivePolicy{K: 2},
	}
	for _, pol := range policies {
		pol := pol
		b.Run(pol.Name(), func(b *testing.B) {
			var pairs int
			for i := 0; i < b.N; i++ {
				app, _ := corpus.NamedApp(row)
				hs := harness.Generate(app)
				reg, res := actions.Analyze(app, hs, pol)
				g := shbg.Build(reg, res, shbg.Options{})
				pairs = len(race.RacyPairs(reg, g, race.CollectAccesses(reg, res)))
			}
			b.ReportMetric(float64(pairs), "racyPairs")
		})
	}
}

// BenchmarkAblationHBRules drops each HB rule and reports the lost
// edges and gained candidates.
func BenchmarkAblationHBRules(b *testing.B) {
	row, _ := corpus.RowByName("APV")
	rules := []shbg.Rule{
		shbg.RuleInvocation, shbg.RuleLifecycle, shbg.RuleGUI,
		shbg.RuleIntraProc, shbg.RuleInterProc, shbg.RuleInterAction,
	}
	app, _ := corpus.NamedApp(row)
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	accs := race.CollectAccesses(reg, res)

	b.Run("full", func(b *testing.B) {
		var g *shbg.Graph
		for i := 0; i < b.N; i++ {
			g = shbg.Build(reg, res, shbg.Options{})
		}
		b.ReportMetric(float64(g.NumEdges()), "hbEdges")
		b.ReportMetric(float64(len(race.RacyPairs(reg, g, accs))), "racyPairs")
	})
	for _, rule := range rules {
		rule := rule
		b.Run(fmt.Sprintf("without-%s", rule), func(b *testing.B) {
			var g *shbg.Graph
			for i := 0; i < b.N; i++ {
				g = shbg.Build(reg, res, shbg.Options{
					Disable: map[shbg.Rule]bool{rule: true},
				})
			}
			b.ReportMetric(float64(g.NumEdges()), "hbEdges")
			b.ReportMetric(float64(len(race.RacyPairs(reg, g, accs))), "racyPairs")
		})
	}
	// The §6.4 GUI-before-stop filter in isolation.
	b.Run("without-gui-teardown", func(b *testing.B) {
		var g *shbg.Graph
		for i := 0; i < b.N; i++ {
			g = shbg.Build(reg, res, shbg.Options{DisableGUITeardownOrder: true})
		}
		b.ReportMetric(float64(g.NumEdges()), "hbEdges")
		b.ReportMetric(float64(len(race.RacyPairs(reg, g, accs))), "racyPairs")
	})
}

// BenchmarkAblationPathBudget sweeps the refuter's path budget.
func BenchmarkAblationPathBudget(b *testing.B) {
	row, _ := corpus.RowByName("OpenSudoku")
	app, _ := corpus.NamedApp(row)
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	g := shbg.Build(reg, res, shbg.Options{})
	pairs := race.RacyPairs(reg, g, race.CollectAccesses(reg, res))

	for _, budget := range []int{50, 500, 5000} {
		budget := budget
		b.Run(fmt.Sprintf("paths-%d", budget), func(b *testing.B) {
			var survivors int
			for i := 0; i < b.N; i++ {
				ref := symexec.NewRefuter(reg, res, symexec.Config{MaxPaths: budget})
				survivors = 0
				for _, p := range pairs {
					if ref.Check(p).TruePositive {
						survivors++
					}
				}
			}
			b.ReportMetric(float64(survivors), "survivors")
		})
	}
}

// BenchmarkAblationRefutationCache toggles the refuter's memoization.
func BenchmarkAblationRefutationCache(b *testing.B) {
	row, _ := corpus.RowByName("OpenSudoku")
	app, _ := corpus.NamedApp(row)
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	g := shbg.Build(reg, res, shbg.Options{})
	pairs := race.RacyPairs(reg, g, race.CollectAccesses(reg, res))

	for _, disable := range []bool{false, true} {
		disable := disable
		name := "cached"
		if disable {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ref := symexec.NewRefuter(reg, res, symexec.Config{DisableCache: disable})
				for _, p := range pairs {
					ref.Check(p)
				}
			}
		})
	}
}

// BenchmarkDynamicBaseline measures the EventRacer-style detector
// (Table 3's comparison column).
func BenchmarkDynamicBaseline(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		n = len(eventracer.Detect(corpus.NewsApp, eventracer.Options{
			Schedules: 5, EventsPerSchedule: 40, Seed: 1,
		}))
	}
	b.ReportMetric(float64(n), "dynRaces")
}

// BenchmarkInterpreter measures raw event execution throughput of the
// runtime simulator.
func BenchmarkInterpreter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := interp.NewMachine(corpus.NewsApp(), int64(i))
		m.Run(60)
	}
}

// BenchmarkHarnessGeneration measures per-activity harness synthesis.
func BenchmarkHarnessGeneration(b *testing.B) {
	row, _ := corpus.RowByName("Mileage") // 50 activities
	for i := 0; i < b.N; i++ {
		app, _ := corpus.NamedApp(row)
		harness.Generate(app)
	}
}

// BenchmarkPointerAnalysis measures the points-to fixpoint alone on a
// mid-sized app under the action-sensitive policy.
func BenchmarkPointerAnalysis(b *testing.B) {
	row, _ := corpus.RowByName("ConnectBot")
	for i := 0; i < b.N; i++ {
		app, _ := corpus.NamedApp(row)
		hs := harness.Generate(app)
		actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	}
}
