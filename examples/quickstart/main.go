// Quickstart: build a tiny Android app model in the IR, run the SIERRA
// pipeline on it, and print the ranked race reports.
//
//	go run ./examples/quickstart
//
// The app has one activity whose onClick starts a background thread that
// writes a field the scroll handler reads — a minimal event race.
package main

import (
	"fmt"

	"sierra/internal/apk"
	"sierra/internal/core"
	"sierra/internal/frontend"
	"sierra/internal/ir"
)

func buildApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p) // the Android Framework model

	// class Main extends Activity implements OnClickListener, OnScrollListener
	act := ir.NewClass("Main", frontend.ActivityClass,
		frontend.OnClickListener, frontend.OnScrollListener)
	act.Fields = []string{"result"}

	// onCreate: wire both listeners to views from the layout.
	onCreate := ir.NewMethodBuilder(frontend.OnCreate)
	onCreate.Int("id", 1)
	onCreate.Call("btn", "this", "Main", frontend.FindViewByID, "id")
	onCreate.Call("", "btn", frontend.ViewClass, frontend.SetOnClickListener, "this")
	onCreate.Int("id2", 2)
	onCreate.Call("lst", "this", "Main", frontend.FindViewByID, "id2")
	onCreate.Call("", "lst", frontend.ViewClass, frontend.SetOnScrollListener, "this")
	onCreate.Ret("")
	act.AddMethod(onCreate.Build())

	// onClick: start a worker thread.
	onClick := ir.NewMethodBuilder(frontend.OnClick, "v")
	onClick.NewObj("w", "Worker")
	onClick.CallSpecial("", "w", "Worker", "<boot>", "this")
	onClick.Call("", "w", "Worker", frontend.Start)
	onClick.Ret("")
	act.AddMethod(onClick.Build())

	// onScroll: read the result — races with the worker's write.
	onScroll := ir.NewMethodBuilder(frontend.OnScroll, "v", "pos")
	onScroll.Load("r", "this", "result")
	onScroll.Ret("")
	act.AddMethod(onScroll.Build())
	p.AddClass(act)

	// class Worker extends Thread
	worker := ir.NewClass("Worker", frontend.ThreadClass)
	worker.Fields = []string{"main"}
	boot := ir.NewMethodBuilder("<boot>", "m")
	boot.Store("this", "main", "m")
	boot.Ret("")
	worker.AddMethod(boot.Build())
	run := ir.NewMethodBuilder(frontend.Run)
	run.Load("m", "this", "main")
	run.NewObj("x", frontend.BundleClass)
	run.Store("m", "result", "x")
	run.Ret("")
	worker.AddMethod(run.Build())
	p.AddClass(worker)

	p.Finalize()
	return &apk.App{
		Name:    "quickstart",
		Program: p,
		Manifest: apk.Manifest{
			Package:    "com.example.quickstart",
			Activities: []apk.Component{{Class: "Main", Layout: "main"}},
		},
		Layouts: map[string]*apk.Layout{
			"main": {Name: "main", Root: &apk.View{
				ID: 0, Type: frontend.ViewClass,
				Children: []*apk.View{
					{ID: 1, Type: frontend.ButtonClass},
					{ID: 2, Type: frontend.ListViewClass},
				},
			}},
		},
	}
}

func main() {
	app := buildApp()
	res := core.Analyze(app, core.Options{})

	fmt.Printf("analyzed %s: %d actions, %d HB edges (%.0f%% ordered), %d candidates, %d races\n\n",
		app.Name, res.NumActions(), res.HBEdges(), res.OrderedPercent(),
		len(res.RacyPairs), res.TrueRaces())
	for i := range res.Reports {
		fmt.Println(res.Reports[i].Describe(res.Registry))
	}
}
