// Figure 8 walkthrough: refutation of an ad-hoc-synchronized candidate.
// OpenSudoku's timer runnable and its stop() both touch mAccumTime, but
// the mIsRunning guard makes the stop-first ordering infeasible — the
// backward symbolic executor proves it and drops the pair. The guard
// flag itself remains a true (benign) race.
//
//	go run ./examples/opensudoku
package main

import (
	"fmt"

	"sierra/internal/actions"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/harness"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

func main() {
	app := corpus.SudokuTimerApp()
	hs := harness.Generate(app)
	reg, res := actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	g := shbg.Build(reg, res, shbg.Options{})
	accs := race.CollectAccesses(reg, res)
	pairs := race.RacyPairs(reg, g, accs)
	ref := symexec.NewRefuter(reg, res, symexec.Config{})

	fmt.Println("== Fig 8: symbolic refutation (OpenSudoku timer) ==")
	fmt.Printf("candidate racy pairs: %d\n\n", len(pairs))

	for _, p := range pairs {
		v := ref.Check(p)
		a := reg.Get(p.A.Action)
		b := reg.Get(p.B.Action)
		verdict := "TRUE RACE"
		if !v.TruePositive {
			verdict = fmt.Sprintf("REFUTED (infeasible order: %v)", v.RefutedOrders)
		}
		fmt.Printf("%-10s  %s %s vs %s %s   [%d paths]  %s\n",
			p.A.Location(), a.Name(), p.A.Kind, b.Name(), p.B.Kind, v.Paths, verdict)
	}

	fmt.Println("\nThe full pipeline agrees:")
	full := core.Analyze(corpus.SudokuTimerApp(), core.Options{})
	fmt.Printf("  %d candidates -> %d races after refutation\n",
		len(full.RacyPairs), full.TrueRaces())
	for i := range full.Reports {
		r := &full.Reports[i]
		tag := ""
		if r.Benign {
			tag = "  (benign guard-variable race, §6.5)"
		}
		fmt.Printf("  survivor: %s%s\n", r.Pair.A.Location(), tag)
	}
}
