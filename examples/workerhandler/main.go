// Worker-handler walkthrough: a handler bound to a HandlerThread's
// looper (§4.4's handler→looper binding) processes messages off the main
// thread while the activity lifecycle touches the same state. SIERRA
// binds each handler to its looper through the points-to analysis, keeps
// same-looper FIFO reasoning separate per looper, and reports the
// cross-looper race — which the schedule search then confirms
// dynamically.
//
//	go run ./examples/workerhandler
package main

import (
	"fmt"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/core"
	"sierra/internal/frontend"
	"sierra/internal/ir"
	"sierra/internal/verify"
)

// buildApp: onCreate spins up a HandlerThread, binds WorkHandler to its
// looper, and sends it a message; handleMessage writes this.result which
// onStop reads.
func buildApp() *apk.App {
	p := ir.NewProgram()
	frontend.InstallFramework(p)

	wh := ir.NewClass("WorkHandler", frontend.HandlerClass)
	wh.Fields = []string{"act"}
	hb := ir.NewMethodBuilder(frontend.HandleMessage, "m")
	hb.Load("a", "this", "act")
	hb.NewObj("x", frontend.BundleClass)
	hb.Store("a", "result", "x")
	hb.Ret("")
	wh.AddMethod(hb.Build())
	p.AddClass(wh)

	act := ir.NewClass("WorkerActivity", frontend.ActivityClass)
	act.Fields = []string{"result"}
	oc := ir.NewMethodBuilder(frontend.OnCreate)
	oc.NewObj("ht", frontend.HandlerThreadClass)
	oc.CallSpecial("", "ht", frontend.HandlerThreadClass, "<initHT>")
	oc.Call("", "ht", frontend.HandlerThreadClass, frontend.Start)
	oc.Call("lp", "ht", frontend.HandlerThreadClass, frontend.GetLooper)
	oc.NewObj("h", "WorkHandler")
	oc.CallSpecial("", "h", frontend.HandlerClass, "<init>", "lp")
	oc.Store("h", "act", "this")
	oc.Int("code", 4)
	oc.Call("", "h", "WorkHandler", frontend.SendEmptyMessage, "code")
	oc.Ret("")
	act.AddMethod(oc.Build())
	os := ir.NewMethodBuilder(frontend.OnStop)
	os.Load("r", "this", "result")
	os.Ret("")
	act.AddMethod(os.Build())
	p.AddClass(act)
	p.Finalize()

	return &apk.App{
		Name:    "workerhandler",
		Program: p,
		Manifest: apk.Manifest{
			Activities: []apk.Component{{Class: "WorkerActivity"}},
		},
		Layouts: map[string]*apk.Layout{},
	}
}

func main() {
	res := core.Analyze(buildApp(), core.Options{})

	fmt.Println("== worker handler on a HandlerThread looper ==")
	for _, a := range res.Registry.Actions() {
		if a.Kind != actions.KindMessage {
			continue
		}
		fmt.Printf("message action %s bound to looper %d (main = %d)\n",
			a.Name(), a.Looper, actions.LooperMain)
	}
	fmt.Printf("races: %d\n", res.TrueRaces())
	for i := range res.Reports {
		fmt.Print(res.Reports[i].Explain(res.Registry, res.Graph))
	}

	if len(res.Reports) > 0 {
		out := verify.Witness(buildApp, res.Reports[0].Pair,
			verify.Options{Schedules: 150, EventsPerSchedule: 60, Seed: 1})
		fmt.Printf("\ndynamic confirmation: both orders observed = %v (%d schedules)\n",
			out.Confirmed(), out.Schedules)
	}
}
