// Figure 2 walkthrough: the paper's inter-component race. A broadcast
// receiver updates a database that the activity's onStop closes; a
// broadcast delivered while the activity is backgrounded hits a closed
// database.
//
//	go run ./examples/dbapp
package main

import (
	"fmt"

	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/report"
)

func main() {
	app := corpus.DatabaseApp()
	res := core.Analyze(app, core.Options{})

	fmt.Println("== Fig 2: inter-component race (Activity vs BroadcastReceiver) ==")
	fmt.Printf("actions: %d   candidates: %d   races: %d\n\n",
		res.NumActions(), len(res.RacyPairs), res.TrueRaces())

	for i := range res.Reports {
		r := &res.Reports[i]
		a := res.Registry.Get(r.Pair.A.Action)
		b := res.Registry.Get(r.Pair.B.Action)
		where := "app code"
		if r.Category == report.FrameworkFromApp {
			where = "framework state reached from app code"
		}
		fmt.Printf("race on %s (%s):\n  %s %s vs %s %s\n",
			r.Pair.A.Location(), where,
			a.Name(), r.Pair.A.Kind, b.Name(), r.Pair.B.Kind)
	}

	fmt.Println("\nOrdered (correctly filtered) lifecycle accesses:")
	onCreate := find(res, "onCreate", 1)
	onStart := find(res, "onStart", 1)
	onReceive := find(res, "onReceive", 0)
	fmt.Printf("  onCreate ≺ onStart: %v (mDB init before open — not racy)\n",
		res.Graph.HB(onCreate, onStart))
	fmt.Printf("  onStop vs onReceive ordered: %v (the race window)\n",
		res.Graph.Ordered(find(res, "onStop", 1), onReceive))
}

func find(res *core.Result, cb string, inst int) int {
	for _, a := range res.Registry.Actions() {
		if a.Callback == cb && (inst == 0 || a.Instance == inst) {
			return a.ID
		}
	}
	return -1
}
