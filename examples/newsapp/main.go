// Figure 1 walkthrough: the paper's intra-component race. A click starts
// a LoaderTask (AsyncTask) whose background body updates the adapter's
// data while a scroll on the main thread reads it through the
// RecycleView's position cache — crash-grade when the schedule is
// unlucky, and invisible to schedule-bound dynamic tools.
//
//	go run ./examples/newsapp
package main

import (
	"fmt"

	"sierra/internal/core"
	"sierra/internal/corpus"
)

func main() {
	app := corpus.NewsApp()
	res := core.Analyze(app, core.Options{CompareContexts: true})

	fmt.Println("== Fig 1: intra-component race (NewsActivity) ==")
	fmt.Printf("actions: %d   HB edges: %d (%.0f%% of max)\n",
		res.NumActions(), res.HBEdges(), res.OrderedPercent())
	fmt.Printf("racy pairs: %d with action sensitivity, %d without\n",
		len(res.RacyPairs), res.RacyPairsNoAS)
	fmt.Printf("races after refutation: %d\n\n", res.TrueRaces())

	for i := range res.Reports {
		r := &res.Reports[i]
		a := res.Registry.Get(r.Pair.A.Action)
		b := res.Registry.Get(r.Pair.B.Action)
		fmt.Printf("race on %s:\n  %s (%s) %s at %v\n  %s (%s) %s at %v\n",
			r.Pair.A.Location(),
			a.Name(), a.Kind, r.Pair.A.Kind, r.Pair.A.Pos,
			b.Name(), b.Kind, r.Pair.B.Kind, r.Pair.B.Pos)
	}

	fmt.Println("\nWhy HB does not order them:")
	onClick := byCallback(res, "onClick")
	onScroll := byCallback(res, "onScroll")
	bg := byCallback(res, "doInBackground")
	fmt.Printf("  onClick ≺ doInBackground: %v (the click posts the task)\n",
		res.Graph.HB(onClick, bg))
	fmt.Printf("  doInBackground vs onScroll ordered: %v (background vs UI event)\n",
		res.Graph.Ordered(bg, onScroll))
}

func byCallback(res *core.Result, cb string) int {
	for _, a := range res.Registry.Actions() {
		if a.Callback == cb {
			return a.ID
		}
	}
	return -1
}
