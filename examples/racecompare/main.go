// Static vs dynamic, the Table 3 comparison in miniature: run SIERRA and
// the EventRacer-style dynamic detector on the same apps and contrast
// what each finds.
//
//	go run ./examples/racecompare
//
// Two effects from the paper's §6.4 show up:
//   - recall: the dynamic detector only sees executed schedules, so with
//     realistic budgets it misses statically-proven races;
//   - precision: pointer-check guards elude its race-coverage filter, so
//     it reports guarded pairs that SIERRA's symbolic executor refutes.
package main

import (
	"fmt"

	"sierra/internal/apk"
	"sierra/internal/core"
	"sierra/internal/corpus"
	"sierra/internal/eventracer"
)

func main() {
	compare("newsapp (Fig 1)", corpus.NewsApp, 1, 12)
	compare("newsapp (Fig 1, generous budget)", corpus.NewsApp, 10, 50)
	compare("nullguard (§6.4 pointer-check FP)", corpus.NullGuardApp, 40, 60)
}

func compare(label string, factory func() *apk.App, schedules, events int) {
	static := core.Analyze(factory(), core.Options{})
	dynamic := eventracer.Detect(factory, eventracer.Options{
		Schedules:         schedules,
		EventsPerSchedule: events,
		Seed:              11,
	})

	fmt.Printf("== %s ==\n", label)
	fmt.Printf("SIERRA (static): %d races\n", static.TrueRaces())
	staticFields := map[string]bool{}
	for i := range static.Reports {
		f := static.Reports[i].Pair.A.Field
		staticFields[f] = true
		fmt.Printf("  static: %s\n", static.Reports[i].Pair.A.Location())
	}
	fmt.Printf("EventRacer (dynamic, %d schedules x %d events): %d reports\n",
		schedules, events, len(dynamic))
	for _, r := range dynamic {
		note := ""
		if r.PointerGuarded {
			note = "  <- pointer-guarded: a false positive SIERRA refutes"
		} else if !staticFields[r.Field] {
			note = "  <- event-instance pair below static action granularity"
		}
		fmt.Printf("  dynamic: .%s between %s and %s (seen in %d schedules)%s\n",
			r.Field, r.Labels[0], r.Labels[1], r.Schedules, note)
	}
	missed := 0
	seen := map[string]bool{}
	for _, r := range dynamic {
		seen[r.Field] = true
	}
	for f := range staticFields {
		if !seen[f] {
			missed++
		}
	}
	fmt.Printf("race fields the dynamic run never witnessed: %d of %d\n\n",
		missed, len(staticFields))
}
