module sierra

go 1.22
