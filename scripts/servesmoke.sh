#!/usr/bin/env sh
# servesmoke.sh — end-to-end smoke test of the `sierra serve` daemon
# against the one-shot CLI: boot the daemon on a loopback port, submit
# a generated corpus app over HTTP, poll the job to completion, fetch
# the stored report, and require it to be byte-identical to the
# document `sierra -report-json` renders for the same bytes and
# refutation config. Then resubmit the identical bytes (must be
# answered from the store without a new job), drive one warm
# skeleton-visible edit through the partial-stage-reuse path (report
# byte-identical to the one-shot CLI, /metrics showing nonzero stage
# reuse), and shut the daemon down with SIGTERM, requiring a clean
# drain (exit 0).
#
# Wired into the tier-1 verify line (see ROADMAP.md). No arguments.
set -eu

repo_root=$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/
cd "$repo_root"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT INT TERM

go build -o "$tmp/sierra" ./cmd/sierra
go run ./cmd/corpusgen -app SuperGenPass -out "$tmp/app.app"

# Pick a free port: bind :0 and read the address the daemon prints.
"$tmp/sierra" serve -addr 127.0.0.1:0 -store-dir "$tmp/store" \
    -refute-jobs 2 2>"$tmp/serve.log" &
pid=$!

base=""
for i in $(seq 1 50); do
    base=$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/serve.log")
    [ -n "$base" ] && break
    sleep 0.1
done
[ -n "$base" ] || { echo "servesmoke: daemon never announced its address" >&2; cat "$tmp/serve.log" >&2; exit 1; }

# Submit, poll, fetch.
curl -sf -X POST --data-binary @"$tmp/app.app" "$base/v1/apps" >"$tmp/submit.json"
job=$(sed -n 's/.*"job_id": "\([^"]*\)".*/\1/p' "$tmp/submit.json")
digest=$(sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' "$tmp/submit.json")
[ -n "$job" ] && [ -n "$digest" ] || { echo "servesmoke: bad submit response:" >&2; cat "$tmp/submit.json" >&2; exit 1; }

status=""
for i in $(seq 1 300); do
    status=$(curl -sf "$base/v1/jobs/$job" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p')
    [ "$status" = done ] && break
    [ "$status" = failed ] && { echo "servesmoke: job failed" >&2; curl -s "$base/v1/jobs/$job" >&2; exit 1; }
    sleep 0.1
done
[ "$status" = done ] || { echo "servesmoke: job never completed (last: $status)" >&2; exit 1; }

curl -sf "$base/v1/reports/$digest" >"$tmp/daemon-report.json"

# Parity: the one-shot CLI must render the same bytes for the same
# input and refutation config.
"$tmp/sierra" -file "$tmp/app.app" -refute-jobs 2 -report-json "$tmp/oneshot-report.json" >/dev/null
if ! cmp -s "$tmp/daemon-report.json" "$tmp/oneshot-report.json"; then
    echo "servesmoke: daemon report differs from one-shot -report-json:" >&2
    diff "$tmp/oneshot-report.json" "$tmp/daemon-report.json" >&2 || true
    exit 1
fi

# A duplicate submission is answered from the store, without a job.
dup=$(curl -sf -X POST --data-binary @"$tmp/app.app" "$base/v1/apps")
case $dup in
*'"status": "done"'*) ;;
*) echo "servesmoke: duplicate submission not served from the store: $dup" >&2; exit 1 ;;
esac

# submit_wait <file>: submit an app, poll its job to completion, and
# print the report digest.
submit_wait() {
    curl -sf -X POST --data-binary @"$1" "$base/v1/apps" >"$tmp/sw.json"
    sw_job=$(sed -n 's/.*"job_id": "\([^"]*\)".*/\1/p' "$tmp/sw.json")
    sw_digest=$(sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' "$tmp/sw.json")
    [ -n "$sw_job" ] && [ -n "$sw_digest" ] || { echo "servesmoke: bad submit response for $1:" >&2; cat "$tmp/sw.json" >&2; exit 1; }
    sw_status=""
    for i in $(seq 1 300); do
        sw_status=$(curl -sf "$base/v1/jobs/$sw_job" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p')
        [ "$sw_status" = done ] && break
        [ "$sw_status" = failed ] && { echo "servesmoke: job for $1 failed" >&2; curl -s "$base/v1/jobs/$sw_job" >&2; exit 1; }
        sleep 0.1
    done
    [ "$sw_status" = done ] || { echo "servesmoke: job for $1 never completed (last: $sw_status)" >&2; exit 1; }
    printf '%s\n' "$sw_digest"
}

# Partial stage reuse: seed a warm baseline with a generated StageDemo
# app, then resubmit a skeleton-visible one-method edit of it. The
# daemon must absorb the edit against the warm baseline — /metrics must
# show the stage-reuse counters move — and the report it stores must
# still be byte-identical to the one-shot CLI on the edited bytes.
go run ./cmd/corpusgen -stagedemo 6 -out "$tmp/stage-base.app"
go run ./cmd/corpusgen -stagedemo 6 -stagedemo-edit "load w a f1_0" -out "$tmp/stage-edit.app"

submit_wait "$tmp/stage-base.app" >/dev/null
edit_digest=$(submit_wait "$tmp/stage-edit.app")
curl -sf "$base/v1/reports/$edit_digest" >"$tmp/stage-daemon.json"

"$tmp/sierra" -file "$tmp/stage-edit.app" -refute-jobs 2 -report-json "$tmp/stage-oneshot.json" >/dev/null
if ! cmp -s "$tmp/stage-daemon.json" "$tmp/stage-oneshot.json"; then
    echo "servesmoke: stage-reused report differs from one-shot -report-json:" >&2
    diff "$tmp/stage-oneshot.json" "$tmp/stage-daemon.json" >&2 || true
    exit 1
fi

curl -sf "$base/metrics" >"$tmp/metrics.txt"
for m in sierra_incremental_stage_applies sierra_incremental_stage_reuse_pta sierra_incremental_stage_reuse_shbg; do
    v=$(awk -v m="$m" '$1 == m { print $2 }' "$tmp/metrics.txt")
    [ -n "$v" ] && [ "$v" -ge 1 ] || {
        echo "servesmoke: /metrics $m = ${v:-absent}, want >= 1 (edit was not absorbed by partial stage reuse)" >&2
        grep sierra_incremental "$tmp/metrics.txt" >&2 || true
        exit 1
    }
done

# Graceful drain: SIGTERM must end the daemon with exit 0.
kill -TERM "$pid"
code=0
wait "$pid" || code=$?
pid=""
[ "$code" -eq 0 ] || { echo "servesmoke: drain exited $code" >&2; cat "$tmp/serve.log" >&2; exit 1; }

echo "servesmoke: OK (digest $digest)"
