#!/usr/bin/env sh
# servesmoke.sh — end-to-end smoke test of the `sierra serve` daemon
# against the one-shot CLI: boot the daemon on a loopback port, submit
# a generated corpus app over HTTP, poll the job to completion, fetch
# the stored report, and require it to be byte-identical to the
# document `sierra -report-json` renders for the same bytes and
# refutation config. Then resubmit the identical bytes (must be
# answered from the store without a new job) and shut the daemon down
# with SIGTERM, requiring a clean drain (exit 0).
#
# Wired into the tier-1 verify line (see ROADMAP.md). No arguments.
set -eu

repo_root=$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/
cd "$repo_root"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"; [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true' EXIT INT TERM

go build -o "$tmp/sierra" ./cmd/sierra
go run ./cmd/corpusgen -app SuperGenPass -out "$tmp/app.app"

# Pick a free port: bind :0 and read the address the daemon prints.
"$tmp/sierra" serve -addr 127.0.0.1:0 -store-dir "$tmp/store" \
    -refute-jobs 2 2>"$tmp/serve.log" &
pid=$!

base=""
for i in $(seq 1 50); do
    base=$(sed -n 's|.*listening on \(http://[0-9.:]*\).*|\1|p' "$tmp/serve.log")
    [ -n "$base" ] && break
    sleep 0.1
done
[ -n "$base" ] || { echo "servesmoke: daemon never announced its address" >&2; cat "$tmp/serve.log" >&2; exit 1; }

# Submit, poll, fetch.
curl -sf -X POST --data-binary @"$tmp/app.app" "$base/v1/apps" >"$tmp/submit.json"
job=$(sed -n 's/.*"job_id": "\([^"]*\)".*/\1/p' "$tmp/submit.json")
digest=$(sed -n 's/.*"digest": "\([^"]*\)".*/\1/p' "$tmp/submit.json")
[ -n "$job" ] && [ -n "$digest" ] || { echo "servesmoke: bad submit response:" >&2; cat "$tmp/submit.json" >&2; exit 1; }

status=""
for i in $(seq 1 300); do
    status=$(curl -sf "$base/v1/jobs/$job" | sed -n 's/.*"status": "\([^"]*\)".*/\1/p')
    [ "$status" = done ] && break
    [ "$status" = failed ] && { echo "servesmoke: job failed" >&2; curl -s "$base/v1/jobs/$job" >&2; exit 1; }
    sleep 0.1
done
[ "$status" = done ] || { echo "servesmoke: job never completed (last: $status)" >&2; exit 1; }

curl -sf "$base/v1/reports/$digest" >"$tmp/daemon-report.json"

# Parity: the one-shot CLI must render the same bytes for the same
# input and refutation config.
"$tmp/sierra" -file "$tmp/app.app" -refute-jobs 2 -report-json "$tmp/oneshot-report.json" >/dev/null
if ! cmp -s "$tmp/daemon-report.json" "$tmp/oneshot-report.json"; then
    echo "servesmoke: daemon report differs from one-shot -report-json:" >&2
    diff "$tmp/oneshot-report.json" "$tmp/daemon-report.json" >&2 || true
    exit 1
fi

# A duplicate submission is answered from the store, without a job.
dup=$(curl -sf -X POST --data-binary @"$tmp/app.app" "$base/v1/apps")
case $dup in
*'"status": "done"'*) ;;
*) echo "servesmoke: duplicate submission not served from the store: $dup" >&2; exit 1 ;;
esac

# Graceful drain: SIGTERM must end the daemon with exit 0.
kill -TERM "$pid"
code=0
wait "$pid" || code=$?
pid=""
[ "$code" -eq 0 ] || { echo "servesmoke: drain exited $code" >&2; cat "$tmp/serve.log" >&2; exit 1; }

echo "servesmoke: OK (digest $digest)"
