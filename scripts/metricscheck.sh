#!/usr/bin/env sh
# metricscheck.sh — fail when the metric names registered in the source
# drift from the README "Observability" contract table (the block
# between the metrics-contract markers).
#
# Source side: every literal first argument to .Count / .Gauge /
# .Series / .Observe / .Hist on a trace, in non-test files outside the
# internal/obs substrate (which forwards caller-supplied names).
# Dynamic names are normalized to the contract's template spelling:
#   "shbg.edges." + rule            ->  shbg.edges.<...>   (prefix)
#   fmt.Sprintf(".....le_%d", ...)  ->  .....le_<n>
#
# Exit 1 with a diff-style report on any mismatch; silent success
# otherwise. Wired into the tier-1 verify line (see ROADMAP.md).
set -eu

repo_root=$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/
cd "$repo_root"

readme="README.md"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# --- contract side: "kind name" lines between the markers ------------
awk '/<!-- metrics-contract:begin -->/{in_block=1; next}
     /<!-- metrics-contract:end -->/{in_block=0}
     in_block && NF == 2 && $1 ~ /^(counter|gauge|series|histogram)$/ {print $1, $2}' \
    "$readme" | sort -u >"$tmp/contract"

[ -s "$tmp/contract" ] || {
    echo "metricscheck: no metrics-contract block found in $readme" >&2
    exit 1
}

# --- source side -----------------------------------------------------
# Literal names (including literal prefixes of concatenated names,
# which keep their trailing dot) and Sprintf templates, tagged with the
# registering method, then mapped to contract kinds.
grep -rhoE '\.(Count|Gauge|Series|Observe|Hist)\((fmt\.Sprintf\()?"[a-z0-9_.%]+"' \
    --include='*.go' --exclude='*_test.go' \
    --exclude-dir=obs \
    internal cmd |
    sed -E 's/^\.([A-Za-z]+)\((fmt\.Sprintf\()?"([^"]+)"/\1 \3/' |
    awk '{
        if ($1 == "Count") kind = "counter"
        else if ($1 == "Gauge") kind = "gauge"
        else if ($1 == "Series") kind = "series"
        else kind = "histogram"
        name = $2
        gsub(/%d/, "<n>", name); gsub(/%s/, "<s>", name)
        print kind, name
    }' | sort -u >"$tmp/source"

[ -s "$tmp/source" ] || {
    echo "metricscheck: found no metric registrations in the source" >&2
    exit 1
}

# --- match -----------------------------------------------------------
# A source name matches a contract entry exactly; a source name with a
# trailing dot (concatenation prefix) matches any contract entry that
# continues it with a <template>; a contract <template> entry is
# satisfied by either of those source shapes.
awk -v contract="$tmp/contract" -v source="$tmp/source" '
BEGIN {
    while ((getline line < contract) > 0) { cn[line] = 1; cl[++ncl] = line }
    close(contract)
    while ((getline line < source) > 0) { sn[line] = 1; sl[++nsl] = line }
    close(source)
    bad = 0

    for (i = 1; i <= nsl; i++) {
        line = sl[i]
        if (line in cn) continue
        split(line, f, " "); kind = f[1]; name = f[2]
        ok = 0
        if (name ~ /\.$/ || name ~ /<[a-z]+>/) {
            # dynamic source name: any contract template continuing it
            prefix = name
            sub(/<[a-z]+>.*$/, "", prefix)
            for (j = 1; j <= ncl; j++) {
                split(cl[j], g, " ")
                if (g[1] == kind && index(g[2], prefix) == 1 && g[2] ~ /</) { ok = 1; break }
            }
        }
        if (!ok) {
            printf "metricscheck: %s %s is registered in the source but missing from the README contract\n", kind, name
            bad = 1
        }
    }

    for (j = 1; j <= ncl; j++) {
        line = cl[j]
        if (line in sn) continue
        split(line, g, " "); kind = g[1]; name = g[2]
        ok = 0
        if (name ~ /</) {
            prefix = name
            sub(/<.*$/, "", prefix)
            for (i = 1; i <= nsl; i++) {
                split(sl[i], f, " ")
                if (f[1] != kind) continue
                if (f[2] == prefix || index(f[2], prefix) == 1) { ok = 1; break }
            }
        }
        if (!ok) {
            printf "metricscheck: %s %s is in the README contract but never registered in the source\n", kind, name
            bad = 1
        }
    }
    exit bad
}'
