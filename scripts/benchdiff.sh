#!/usr/bin/env sh
# benchdiff.sh — run the kernel benchmarks (BenchmarkKernel*) and compare
# HEAD against a baseline ref.
#
#   ./scripts/benchdiff.sh -smoke        one iteration of every kernel bench
#                                        (the tier-1 clause: catches perf-path
#                                        code that only compiles under -bench),
#                                        plus one iteration of each parallel
#                                        kernel bench at 2 workers under
#                                        GOMAXPROCS=2
#   ./scripts/benchdiff.sh -cpu [list]   scaling lane: run the three parallel
#                                        kernels (pointer, SHBG closure,
#                                        refutation) with jobs=N under
#                                        GOMAXPROCS=N for each N in the
#                                        comma-separated list (default
#                                        1,2,4,8) and write per-core ns/op
#                                        medians + speedup-vs-1 curves to
#                                        BENCH_scaling.json
#   ./scripts/benchdiff.sh -incr [N]     incremental lane: cold vs warm medians
#                                        for the canonical one-method
#                                        skeleton-visible edit on an N-group
#                                        generated app (default 24), asserting
#                                        byte-identical reports, written to
#                                        BENCH_incremental.json
#   ./scripts/benchdiff.sh -stream [cfg] streaming lane: fused generate+analyze
#                                        vs the same corpus pre-materialized on
#                                        disk (apps/sec both lanes, queue peak,
#                                        heap high water, verdict parity),
#                                        written to BENCH_streaming.json; cfg
#                                        defaults to a built-in all-family mix
#                                        of BENCH_STREAM_APPS (default 400) apps
#   ./scripts/benchdiff.sh <ref>         bench HEAD and <ref> (via a throwaway
#                                        git worktree) and print a per-kernel
#                                        ns/op + allocs/op delta as JSON in the
#                                        BENCH_kernels.json before/after shape
#
# Every comparison run also appends one entry — UTC date, HEAD SHA,
# baseline ref/SHA, and the per-kernel HEAD medians — to a cumulative
# trajectory file, so the kernels' perf history accretes alongside the
# BENCH_*.json artifacts.
#
# Environment:
#   BENCH_COUNT       -count for the comparison runs (default 3)
#   BENCH_PATTERN     bench regexp (default BenchmarkKernel)
#   BENCH_TRAJECTORY  trajectory file (default BENCH_trajectory.json at
#                     the repo root; set empty to skip the append)
set -eu

PATTERN="${BENCH_PATTERN:-BenchmarkKernel}"
COUNT="${BENCH_COUNT:-3}"
# The three deterministic parallel kernels; each exposes jobs=N
# sub-benchmarks whose list tracks GOMAXPROCS (see bench_kernels_test.go),
# so `-cpu N` always finds a matching jobs=N lane.
PAR_PATTERN='BenchmarkKernel(Pointer|SHBGClosure|Refutation)Parallel'

usage() {
    echo "usage: $0 -smoke | $0 -cpu [1,2,4,8] | $0 -incr [groups] | $0 -stream [config] | $0 <git-ref>" >&2
    exit 2
}

[ $# -ge 1 ] && [ $# -le 2 ] || usage
[ $# -eq 2 ] && [ "$1" != "-cpu" ] && [ "$1" != "-incr" ] && [ "$1" != "-stream" ] && usage

repo_root=$(git rev-parse --show-toplevel)
cd "$repo_root"

if [ "$1" = "-smoke" ]; then
    go test -run '^$' -bench "$PATTERN" -benchtime=1x .
    # One iteration of each parallel kernel bench at 2 workers with two
    # procs, so multi-worker scheduling of every parallel kernel is
    # exercised even when the sequential pass ran at GOMAXPROCS=1.
    go test -run '^$' -bench "$PAR_PATTERN/jobs=2\$" -benchtime=1x -cpu 2 .
    # One untimed iteration of the incremental lane: the cold/warm report
    # byte-parity assertion runs even when nobody benches the -incr lane.
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT INT TERM
    go run ./cmd/evaluate -incr-bench "$tmp/incr.json" -incr-iters 1 -incr-groups 6 -q
    echo "benchdiff: incremental smoke ok (byte-identical warm report)" >&2
    # One-iteration streaming smoke: a tiny fused generate+analyze run vs
    # its materialized twin; -stream-bench exits non-zero unless the two
    # lanes' verdict tables are byte-identical.
    cat >"$tmp/stream.cfg" <<EOF
corpus smoke-stream
seed 7
apps 6
scenario async-storm
scenario message-chain
scenario service-lifecycle
EOF
    go run ./cmd/evaluate -stream "$tmp/stream.cfg" -stream-bench "$tmp/stream.json" -q
    echo "benchdiff: streaming smoke ok (verdict parity stream vs disk)" >&2
    exit 0
fi

if [ "$1" = "-stream" ]; then
    OUT="${BENCH_STREAMING:-$repo_root/BENCH_streaming.json}"
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT INT TERM
    CFG="${2:-}"
    if [ -z "$CFG" ]; then
        CFG="$tmp/stream.cfg"
        cat >"$CFG" <<EOF
# benchdiff -stream default mix: every scenario family at its default
# weight except table2-x10, whose ~10x apps cost minutes each and
# would dominate the lane; pass a config path to bench a custom
# corpus (including table2-x10) instead.
corpus benchdiff-stream
seed 20180425
apps ${BENCH_STREAM_APPS:-400}
scenario paper-mix
scenario async-storm
scenario guarded-sync
scenario service-lifecycle
scenario message-chain
scenario reflection-storm
scenario alias-trap-deep
EOF
    fi
    echo "benchdiff: streaming lane ($CFG)..." >&2
    go run ./cmd/evaluate -stream "$CFG" -stream-bench "$OUT" -q
    cat "$OUT"
    echo "benchdiff: wrote $OUT" >&2
    exit 0
fi

if [ "$1" = "-incr" ]; then
    GROUPS="${2:-24}"
    INCR_OUT="${BENCH_INCR:-$repo_root/BENCH_incremental.json}"
    echo "benchdiff: incremental lane groups=$GROUPS iters=${BENCH_INCR_ITERS:-7}..." >&2
    go run ./cmd/evaluate -incr-bench "$INCR_OUT" \
        -incr-iters "${BENCH_INCR_ITERS:-7}" -incr-groups "$GROUPS"
    cat "$INCR_OUT"
    echo "benchdiff: wrote $INCR_OUT" >&2
    exit 0
fi

if [ "$1" = "-cpu" ]; then
    CPUS="${2:-1,2,4,8}"
    SCALING="${BENCH_SCALING:-$repo_root/BENCH_scaling.json}"
    tmp=$(mktemp -d)
    trap 'rm -rf "$tmp"' EXIT INT TERM
    host_cpus=$(nproc 2>/dev/null || echo 1)
    # Honesty on small hosts: a jobs=N lane with N > host_cpus measures
    # scheduler overhead, not parallel speedup, and would poison the
    # speedup-vs-1 curve. Skip those lanes and record them in the
    # artifact; BENCH_OVERSUB=1 forces them anyway.
    RUN_CPUS=""
    SKIPPED=""
    for n in $(printf '%s' "$CPUS" | tr ',' ' '); do
        if [ "$n" -gt "$host_cpus" ] && [ "${BENCH_OVERSUB:-0}" != "1" ]; then
            SKIPPED="${SKIPPED:+$SKIPPED,}$n"
            echo "benchdiff: skipping jobs=$n lane (host has $host_cpus CPUs; BENCH_OVERSUB=1 forces it)" >&2
            continue
        fi
        RUN_CPUS="${RUN_CPUS:+$RUN_CPUS,}$n"
    done
    if [ -z "$RUN_CPUS" ]; then
        echo "benchdiff: no runnable -cpu lanes: every requested N in {$CPUS} exceeds the host's $host_cpus CPUs" >&2
        exit 1
    fi
    for n in $(printf '%s' "$RUN_CPUS" | tr ',' ' '); do
        echo "benchdiff: scaling lane GOMAXPROCS=$n jobs=$n (count=$COUNT)..." >&2
        # jobs=N exists at every N because the benches' jobs list includes
        # GOMAXPROCS(0); the jobs=N$ anchor skips any #01 duplicate.
        go test -run '^$' -bench "$PAR_PATTERN/jobs=$n\$" -benchmem \
            -count="$COUNT" -cpu "$n" . >>"$tmp/scaling.txt"
    done
    awk -v cpus="$RUN_CPUS" -v skipped="$SKIPPED" -v host_cpus="$host_cpus" -v count="$COUNT" \
        -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
        -v head_sha="$(git rev-parse HEAD)" '
    function median(arr, n,    i, j, tmpv, half) {
        for (i = 2; i <= n; i++) {
            tmpv = arr[i]
            for (j = i - 1; j >= 1 && arr[j] > tmpv; j--) arr[j + 1] = arr[j]
            arr[j + 1] = tmpv
        }
        half = int((n + 1) / 2)
        return arr[half]
    }
    function med(kernel, jobs,    i, tmpa) {
        for (i = 1; i <= cnt[kernel, jobs]; i++) tmpa[i] = ns[kernel, jobs, i]
        return median(tmpa, cnt[kernel, jobs])
    }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)          # strip the -N GOMAXPROCS suffix
        split(name, parts, "/")
        kernel = parts[1]
        jobs = parts[2]
        sub(/^jobs=/, "", jobs)
        if (!(kernel in seen)) { seen[kernel] = 1; kernels[++nk] = kernel }
        for (k = 3; k <= NF; k++)
            if ($k == "ns/op") {
                cnt[kernel, jobs]++
                ns[kernel, jobs, cnt[kernel, jobs]] = $(k - 1) + 0
            }
    }
    END {
        nc = split(cpus, cl, ",")
        # stable kernel order
        for (i = 1; i <= nk; i++)
            for (j = i + 1; j <= nk; j++)
                if (kernels[j] < kernels[i]) { t = kernels[i]; kernels[i] = kernels[j]; kernels[j] = t }
        printf "{\n  \"schema\": \"sierra-kernel-scaling/v1\",\n"
        printf "  \"date\": \"%s\",\n  \"head_sha\": \"%s\",\n", date, head_sha
        printf "  \"host_cpus\": %d,\n  \"count\": %d,\n", host_cpus, count
        printf "  \"cpus\": [%s],\n", cpus
        printf "  \"skipped_oversubscribed\": [%s],\n", skipped
        printf "  \"note\": \"Each lane runs jobs=N under GOMAXPROCS=N; every parallel kernel is bit-for-bit deterministic, so the curves measure wall clock only. Lanes with N > host_cpus oversubscribe the host and measure scheduling overhead, not parallel speedup; they are skipped (and listed in skipped_oversubscribed) unless BENCH_OVERSUB=1 forces them.\",\n"
        printf "  \"kernels\": {\n"
        for (i = 1; i <= nk; i++) {
            kernel = kernels[i]
            base = 0
            printf "    \"%s\": {\n      \"ns_op\": {", kernel
            sep = ""
            for (c = 1; c <= nc; c++) {
                if (cnt[kernel, cl[c]] == 0) continue
                m = med(kernel, cl[c])
                if (cl[c] + 0 == 1) base = m
                printf "%s\"%s\": %d", sep, cl[c], m
                sep = ", "
            }
            printf "},\n      \"speedup_vs_1\": {"
            sep = ""
            for (c = 1; c <= nc; c++) {
                if (cl[c] + 0 == 1 || cnt[kernel, cl[c]] == 0) continue
                m = med(kernel, cl[c])
                printf "%s\"%s\": %.2f", sep, cl[c], (base > 0 && m > 0 ? base / m : 0)
                sep = ", "
            }
            printf "}\n    }%s\n", (i < nk ? "," : "")
        }
        printf "  }\n}\n"
    }' "$tmp/scaling.txt" >"$SCALING"
    cat "$SCALING"
    echo "benchdiff: wrote $SCALING" >&2
    exit 0
fi

ref="$1"
git rev-parse --verify --quiet "$ref^{commit}" >/dev/null || {
    echo "benchdiff: not a commit: $ref" >&2
    exit 1
}

# run_bench <dir> <outfile>: full -benchmem runs, raw `go test` output.
run_bench() {
    (cd "$1" && go test -run '^$' -bench "$PATTERN" -benchmem -count="$COUNT" .) >"$2"
}

tmp=$(mktemp -d)
wt="$tmp/baseline"
cleanup() {
    git worktree remove --force "$wt" >/dev/null 2>&1 || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "benchdiff: benching HEAD ($(git rev-parse --short HEAD))..." >&2
run_bench "$repo_root" "$tmp/head.txt"

echo "benchdiff: benching $ref ($(git rev-parse --short "$ref"))..." >&2
git worktree add --detach "$wt" "$ref" >/dev/null
run_bench "$wt" "$tmp/base.txt"

TRAJ="${BENCH_TRAJECTORY-$repo_root/BENCH_trajectory.json}"

# Reduce each raw output to "name ns_op bytes_op allocs_op" medians and
# join the two runs into before/after JSON; the HEAD medians also go to
# the one-line trajectory entry.
awk -v baseline="$tmp/base.txt" -v head="$tmp/head.txt" \
    -v entry="$tmp/entry.json" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v head_sha="$(git rev-parse HEAD)" \
    -v base_ref="$ref" \
    -v base_sha="$(git rev-parse "$ref^{commit}")" '
function median(arr, n,    i, j, tmpv, half) {
    for (i = 2; i <= n; i++) {
        tmpv = arr[i]
        for (j = i - 1; j >= 1 && arr[j] > tmpv; j--) arr[j + 1] = arr[j]
        arr[j + 1] = tmpv
    }
    half = int((n + 1) / 2)
    return arr[half]
}
function slurp(file, ns, by, al, cnt,    line, f, name, n, k) {
    while ((getline line < file) > 0) {
        n = split(line, f, /[ \t]+/)
        if (f[1] !~ /^Benchmark/ || n < 4) continue
        # Benchmark lines interleave custom metrics ("231.0 actions")
        # with the standard ones, so locate values by their unit label.
        sub(/-[0-9]+$/, "", f[1])
        name = f[1]
        cnt[name]++
        for (k = 3; k <= n; k++) {
            if (f[k] == "ns/op")     ns[name, cnt[name]] = f[k-1] + 0
            if (f[k] == "B/op")      by[name, cnt[name]] = f[k-1] + 0
            if (f[k] == "allocs/op") al[name, cnt[name]] = f[k-1] + 0
        }
    }
    close(file)
}
function med3(src, name, n,    i, tmpa) {
    for (i = 1; i <= n; i++) tmpa[i] = src[name, i]
    return median(tmpa, n)
}
BEGIN {
    slurp(baseline, bns, bby, bal, bcnt)
    slurp(head, hns, hby, hal, hcnt)
    printf "{\n  \"schema\": \"sierra-kernel-benchdiff/v1\",\n  \"kernels\": {\n"
    first = 1
    for (name in hcnt) names[++nn] = name
    # stable output order
    for (i = 1; i <= nn; i++)
        for (j = i + 1; j <= nn; j++)
            if (names[j] < names[i]) { t = names[i]; names[i] = names[j]; names[j] = t }
    ekernels = ""
    for (i = 1; i <= nn; i++) {
        name = names[i]
        if (!(name in bcnt)) continue
        b_ns = med3(bns, name, bcnt[name]); h_ns = med3(hns, name, hcnt[name])
        b_al = med3(bal, name, bcnt[name]); h_al = med3(hal, name, hcnt[name])
        b_by = med3(bby, name, bcnt[name]); h_by = med3(hby, name, hcnt[name])
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\n", name
        printf "      \"before\": {\"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d},\n", b_ns, b_by, b_al
        printf "      \"after\":  {\"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d},\n", h_ns, h_by, h_al
        printf "      \"speedup\": %.2f,\n", (h_ns > 0 ? b_ns / h_ns : 0)
        printf "      \"allocs_ratio\": %.2f\n    }", (h_al > 0 ? b_al / h_al : 0)
        if (ekernels != "") ekernels = ekernels ","
        ekernels = ekernels sprintf("\"%s\":{\"ns_op\":%d,\"bytes_op\":%d,\"allocs_op\":%d}", \
                                    name, h_ns, h_by, h_al)
    }
    printf "\n  }\n}\n"
    printf "{\"date\":\"%s\",\"head_sha\":\"%s\",\"base_ref\":\"%s\",\"base_sha\":\"%s\",\"kernels\":{%s}}\n", \
           date, head_sha, base_ref, base_sha, ekernels > entry
}' </dev/null

# Append the entry to the cumulative trajectory array (one entry per
# line, so `git diff` shows one added line per run).
if [ -n "$TRAJ" ] && [ -s "$tmp/entry.json" ]; then
    if [ -s "$TRAJ" ]; then
        sed '$d' "$TRAJ" >"$tmp/traj"       # drop the closing ]
        sed '$s/$/,/' "$tmp/traj" >"$TRAJ"  # comma after the last entry
    else
        printf '[\n' >"$TRAJ"
    fi
    cat "$tmp/entry.json" >>"$TRAJ"
    printf ']\n' >>"$TRAJ"
    echo "benchdiff: appended trajectory entry to $TRAJ" >&2
fi
