#!/usr/bin/env sh
# benchdiff.sh — run the kernel benchmarks (BenchmarkKernel*) and compare
# HEAD against a baseline ref.
#
#   ./scripts/benchdiff.sh -smoke        one iteration of every kernel bench
#                                        (the tier-1 clause: catches perf-path
#                                        code that only compiles under -bench)
#   ./scripts/benchdiff.sh <ref>         bench HEAD and <ref> (via a throwaway
#                                        git worktree) and print a per-kernel
#                                        ns/op + allocs/op delta as JSON in the
#                                        BENCH_kernels.json before/after shape
#
# Every comparison run also appends one entry — UTC date, HEAD SHA,
# baseline ref/SHA, and the per-kernel HEAD medians — to a cumulative
# trajectory file, so the kernels' perf history accretes alongside the
# BENCH_*.json artifacts.
#
# Environment:
#   BENCH_COUNT       -count for the comparison runs (default 3)
#   BENCH_PATTERN     bench regexp (default BenchmarkKernel)
#   BENCH_TRAJECTORY  trajectory file (default BENCH_trajectory.json at
#                     the repo root; set empty to skip the append)
set -eu

PATTERN="${BENCH_PATTERN:-BenchmarkKernel}"
COUNT="${BENCH_COUNT:-3}"

usage() {
    echo "usage: $0 -smoke | $0 <git-ref>" >&2
    exit 2
}

[ $# -eq 1 ] || usage

repo_root=$(git rev-parse --show-toplevel)
cd "$repo_root"

if [ "$1" = "-smoke" ]; then
    exec go test -run '^$' -bench "$PATTERN" -benchtime=1x .
fi

ref="$1"
git rev-parse --verify --quiet "$ref^{commit}" >/dev/null || {
    echo "benchdiff: not a commit: $ref" >&2
    exit 1
}

# run_bench <dir> <outfile>: full -benchmem runs, raw `go test` output.
run_bench() {
    (cd "$1" && go test -run '^$' -bench "$PATTERN" -benchmem -count="$COUNT" .) >"$2"
}

tmp=$(mktemp -d)
wt="$tmp/baseline"
cleanup() {
    git worktree remove --force "$wt" >/dev/null 2>&1 || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "benchdiff: benching HEAD ($(git rev-parse --short HEAD))..." >&2
run_bench "$repo_root" "$tmp/head.txt"

echo "benchdiff: benching $ref ($(git rev-parse --short "$ref"))..." >&2
git worktree add --detach "$wt" "$ref" >/dev/null
run_bench "$wt" "$tmp/base.txt"

TRAJ="${BENCH_TRAJECTORY-$repo_root/BENCH_trajectory.json}"

# Reduce each raw output to "name ns_op bytes_op allocs_op" medians and
# join the two runs into before/after JSON; the HEAD medians also go to
# the one-line trajectory entry.
awk -v baseline="$tmp/base.txt" -v head="$tmp/head.txt" \
    -v entry="$tmp/entry.json" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v head_sha="$(git rev-parse HEAD)" \
    -v base_ref="$ref" \
    -v base_sha="$(git rev-parse "$ref^{commit}")" '
function median(arr, n,    i, j, tmpv, half) {
    for (i = 2; i <= n; i++) {
        tmpv = arr[i]
        for (j = i - 1; j >= 1 && arr[j] > tmpv; j--) arr[j + 1] = arr[j]
        arr[j + 1] = tmpv
    }
    half = int((n + 1) / 2)
    return arr[half]
}
function slurp(file, ns, by, al, cnt,    line, f, name, n, k) {
    while ((getline line < file) > 0) {
        n = split(line, f, /[ \t]+/)
        if (f[1] !~ /^Benchmark/ || n < 4) continue
        # Benchmark lines interleave custom metrics ("231.0 actions")
        # with the standard ones, so locate values by their unit label.
        sub(/-[0-9]+$/, "", f[1])
        name = f[1]
        cnt[name]++
        for (k = 3; k <= n; k++) {
            if (f[k] == "ns/op")     ns[name, cnt[name]] = f[k-1] + 0
            if (f[k] == "B/op")      by[name, cnt[name]] = f[k-1] + 0
            if (f[k] == "allocs/op") al[name, cnt[name]] = f[k-1] + 0
        }
    }
    close(file)
}
function med3(src, name, n,    i, tmpa) {
    for (i = 1; i <= n; i++) tmpa[i] = src[name, i]
    return median(tmpa, n)
}
BEGIN {
    slurp(baseline, bns, bby, bal, bcnt)
    slurp(head, hns, hby, hal, hcnt)
    printf "{\n  \"schema\": \"sierra-kernel-benchdiff/v1\",\n  \"kernels\": {\n"
    first = 1
    for (name in hcnt) names[++nn] = name
    # stable output order
    for (i = 1; i <= nn; i++)
        for (j = i + 1; j <= nn; j++)
            if (names[j] < names[i]) { t = names[i]; names[i] = names[j]; names[j] = t }
    ekernels = ""
    for (i = 1; i <= nn; i++) {
        name = names[i]
        if (!(name in bcnt)) continue
        b_ns = med3(bns, name, bcnt[name]); h_ns = med3(hns, name, hcnt[name])
        b_al = med3(bal, name, bcnt[name]); h_al = med3(hal, name, hcnt[name])
        b_by = med3(bby, name, bcnt[name]); h_by = med3(hby, name, hcnt[name])
        if (!first) printf ",\n"
        first = 0
        printf "    \"%s\": {\n", name
        printf "      \"before\": {\"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d},\n", b_ns, b_by, b_al
        printf "      \"after\":  {\"ns_op\": %d, \"bytes_op\": %d, \"allocs_op\": %d},\n", h_ns, h_by, h_al
        printf "      \"speedup\": %.2f,\n", (h_ns > 0 ? b_ns / h_ns : 0)
        printf "      \"allocs_ratio\": %.2f\n    }", (h_al > 0 ? b_al / h_al : 0)
        if (ekernels != "") ekernels = ekernels ","
        ekernels = ekernels sprintf("\"%s\":{\"ns_op\":%d,\"bytes_op\":%d,\"allocs_op\":%d}", \
                                    name, h_ns, h_by, h_al)
    }
    printf "\n  }\n}\n"
    printf "{\"date\":\"%s\",\"head_sha\":\"%s\",\"base_ref\":\"%s\",\"base_sha\":\"%s\",\"kernels\":{%s}}\n", \
           date, head_sha, base_ref, base_sha, ekernels > entry
}' </dev/null

# Append the entry to the cumulative trajectory array (one entry per
# line, so `git diff` shows one added line per run).
if [ -n "$TRAJ" ] && [ -s "$tmp/entry.json" ]; then
    if [ -s "$TRAJ" ]; then
        sed '$d' "$TRAJ" >"$tmp/traj"       # drop the closing ]
        sed '$s/$/,/' "$tmp/traj" >"$TRAJ"  # comma after the last entry
    else
        printf '[\n' >"$TRAJ"
    fi
    cat "$tmp/entry.json" >>"$TRAJ"
    printf ']\n' >>"$TRAJ"
    echo "benchdiff: appended trajectory entry to $TRAJ" >&2
fi
