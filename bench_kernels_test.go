// Kernel benchmarks for the dense-ID/bitset substrate: the pointer
// worklist, SHBG build+closure, racy-pair intersection, and per-pair
// refutation, each on a synthetic large app (hundreds of actions,
// >1k accesses) where the per-app inner loops dominate — the costs the
// paper reports driving SIERRA's 40-minute median runtime (§6).
//
//	go test -bench 'BenchmarkKernel' -benchmem .
//
// BENCH_kernels.json records the before/after ns/op and allocs/op of
// the map-set → bitset switch.
package sierra

import (
	"fmt"
	"runtime"
	"testing"

	"sierra/internal/actions"
	"sierra/internal/apk"
	"sierra/internal/corpus"
	"sierra/internal/harness"
	"sierra/internal/pointer"
	"sierra/internal/race"
	"sierra/internal/shbg"
	"sierra/internal/symexec"
)

// synthLargeApp generates the macro-benchmark workload: ≥64 actions and
// ≥1k accesses (the probe sizes land at ~231 actions / ~1.4k accesses).
func synthLargeApp() *apk.App {
	app, _ := corpus.Generate("SynthLarge", "1M", corpus.Knobs{
		Activities: 8, AsyncTotal: 24, AsyncFields: 3,
		GuardTotal: 12, GuardFields: 2,
		ImplicitTotal: 8, ImplicitFields: 2,
		TrapOnlyTotal: 8, FillerTotal: 24,
		WithReceiver: true, WithService: true, WithHandlerThread: true,
	})
	return app
}

// synthAnalyzed runs the pipeline front half once (shared fixture for
// the downstream kernels).
func synthAnalyzed(b *testing.B) (*actions.Registry, *pointer.Result) {
	b.Helper()
	app := synthLargeApp()
	hs := harness.Generate(app)
	return actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
}

// BenchmarkKernelPointerWorklist measures the points-to fixpoint
// (harness generation + worklist) on the synthetic large app — the
// pts/fpts/spts propagation loops.
func BenchmarkKernelPointerWorklist(b *testing.B) {
	app := synthLargeApp()
	hs := harness.Generate(app)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		actions.Analyze(app, hs, pointer.ActionSensitivePolicy{K: 2})
	}
}

// BenchmarkKernelPointerDelta compares the two points-to fixpoint
// implementations head to head on the same workload: the exhaustive
// reference solver against the difference-propagation worklist (the
// default; see -pta-solver). Both produce bit-for-bit identical
// results, so any gap is pure re-computation avoided.
func BenchmarkKernelPointerDelta(b *testing.B) {
	app := synthLargeApp()
	hs := harness.Generate(app)
	for _, solver := range []pointer.Solver{pointer.SolverExhaustive, pointer.SolverDelta} {
		b.Run("solver="+string(solver), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				actions.AnalyzeSolver(nil, app, hs, pointer.ActionSensitivePolicy{K: 2}, solver, 0, nil)
			}
		})
	}
}

// BenchmarkKernelPointerParallel measures the SCC-partitioned parallel
// delta solver at increasing worker counts. jobs=1 is the exact legacy
// delta path; any count produces a bit-identical Result, so the gap is
// pure wall clock. The jobs list tracks GOMAXPROCS so the benchdiff
// -cpu lane can select a matching sub-benchmark per core count.
func BenchmarkKernelPointerParallel(b *testing.B) {
	app := synthLargeApp()
	hs := harness.Generate(app)
	for _, jobs := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				actions.AnalyzeSolver(nil, app, hs, pointer.ActionSensitivePolicy{K: 2}, pointer.SolverDelta, jobs, nil)
			}
		})
	}
}

// BenchmarkKernelSHBGBuild measures full SHBG construction: rules 1–5
// plus the rule-6/7 closure iteration.
func BenchmarkKernelSHBGBuild(b *testing.B) {
	reg, res := synthAnalyzed(b)
	b.ReportAllocs()
	b.ResetTimer()
	var g *shbg.Graph
	for i := 0; i < b.N; i++ {
		g = shbg.Build(reg, res, shbg.Options{})
	}
	b.ReportMetric(float64(g.NumActions()), "actions")
	b.ReportMetric(float64(g.NumEdges()), "hbEdges")
}

// BenchmarkKernelSHBGClosure isolates the closure-dominated
// configuration: every pairwise-dominance rule disabled except
// invocation and inter-action, so the rule-6/7 fixpoint (the n³ part)
// is the measured work.
func BenchmarkKernelSHBGClosure(b *testing.B) {
	reg, res := synthAnalyzed(b)
	disable := map[shbg.Rule]bool{
		shbg.RuleIntraProc: true, shbg.RuleInterProc: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shbg.Build(reg, res, shbg.Options{Disable: disable})
	}
}

// BenchmarkKernelSHBGClosureParallel measures the block-parallel
// rule-6/7 closure at increasing worker counts on the closure-dominated
// configuration. jobs=1 is the exact sequential closure; the graph is
// bit-identical at any count (see shbg.Options.Jobs).
func BenchmarkKernelSHBGClosureParallel(b *testing.B) {
	reg, res := synthAnalyzed(b)
	disable := map[shbg.Rule]bool{
		shbg.RuleIntraProc: true, shbg.RuleInterProc: true,
	}
	for _, jobs := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				shbg.Build(reg, res, shbg.Options{Disable: disable, Jobs: jobs})
			}
		})
	}
}

// BenchmarkKernelRacyPairs measures the same-field intersection loop
// (alias word-AND + HB bit tests + dedup) over the collected accesses.
func BenchmarkKernelRacyPairs(b *testing.B) {
	reg, res := synthAnalyzed(b)
	g := shbg.Build(reg, res, shbg.Options{})
	accs := race.CollectAccesses(reg, res)
	b.ReportAllocs()
	b.ResetTimer()
	var pairs []race.Pair
	for i := 0; i < b.N; i++ {
		pairs = race.RacyPairs(reg, g, accs)
	}
	b.ReportMetric(float64(len(accs)), "accesses")
	b.ReportMetric(float64(len(pairs)), "pairs")
}

// BenchmarkKernelRefutation measures per-pair symbolic refutation of
// every candidate, sequentially (the fresh-refuter cost structure the
// parallel pool distributes).
func BenchmarkKernelRefutation(b *testing.B) {
	reg, res := synthAnalyzed(b)
	g := shbg.Build(reg, res, shbg.Options{})
	pairs := race.RacyPairs(reg, g, race.CollectAccesses(reg, res))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := symexec.NewRefuter(reg, res, symexec.Config{})
		for _, p := range pairs {
			ref.Check(p)
		}
	}
	b.ReportMetric(float64(len(pairs)), "pairs")
}

// BenchmarkKernelRefutationParallel measures CheckAll at increasing
// worker counts: jobs=1 is the legacy shared-memo loop, jobs>1 the
// per-pair fresh-memo pool (whose verdicts stay deterministic at any
// width).
func BenchmarkKernelRefutationParallel(b *testing.B) {
	reg, res := synthAnalyzed(b)
	g := shbg.Build(reg, res, shbg.Options{})
	pairs := race.RacyPairs(reg, g, race.CollectAccesses(reg, res))
	for _, jobs := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				symexec.CheckAll(reg, res, symexec.Config{Jobs: jobs}, pairs)
			}
			b.ReportMetric(float64(len(pairs)), "pairs")
		})
	}
}
